package lppm

import (
	"fmt"
	"math"

	"priste/internal/grid"
	"priste/internal/mat"
)

// PlanarLaplace is the α-planar-Laplace mechanism (α-PLM) of
// Geo-indistinguishability [8], discretised to a grid map: the emission
// probability decays exponentially with the Euclidean distance between the
// true and reported cells,
//
//	Pr(o = s_j | u = s_i) ∝ exp(−α·d(s_i, s_j)).
//
// α is in units of 1/distance (1/km when the grid's cell size is in km).
// The paper's authors apply the continuous planar Laplace and then snap to
// the grid; the row-normalised discrete form used here is the standard
// exponential-mechanism discretisation and satisfies
// 2α-geo-indistinguishability exactly (the normalising constants of two
// rows differ by at most e^{α·d}); the continuous sampler is also provided
// (SampleContinuous) for applications wanting un-discretised output.
//
// Emission matrices are cached per budget in a bounded, concurrency-safe
// EmissionTable because the PriSTE loop repeatedly halves the budget
// (α, α/2, α/4, …) and revisits the same values across timestamps — and,
// when the mechanism is shared by a compiled core.Plan, across sessions.
type PlanarLaplace struct {
	g     *grid.Grid
	dist  *mat.Matrix
	table *EmissionTable
}

// maxPLMCache bounds the emission table. Budget halving produces only a
// handful of distinct values per initial budget, so this is generous even
// for a deployment mixing several session budgets; LRU eviction keeps the
// table bounded under adversarially varied budgets.
const maxPLMCache = 64

// NewPlanarLaplace returns a PLM over the given grid.
func NewPlanarLaplace(g *grid.Grid) *PlanarLaplace {
	p := &PlanarLaplace{
		g:    g,
		dist: g.DistanceMatrix(),
	}
	p.table = NewEmissionTable(maxPLMCache, p.computeEmission)
	return p
}

// States implements Perturber.
func (p *PlanarLaplace) States() int { return p.g.States() }

// Grid returns the underlying map.
func (p *PlanarLaplace) Grid() *grid.Grid { return p.g }

// Begin implements Perturber.
func (p *PlanarLaplace) Begin(int) error { return nil }

// Observe implements Perturber.
func (p *PlanarLaplace) Observe(int, int, mat.Vector) error { return nil }

// HistoryIndependent marks the mechanism as history-independent: Begin and
// Observe are no-ops and Emission depends only on the budget, so one
// instance (and its emission table) can serve every session of a shared
// plan and certified release verdicts are reusable across sessions.
func (p *PlanarLaplace) HistoryIndependent() {}

// Table returns the mechanism's emission table (the per-alpha cache shared
// by every session driving this instance).
func (p *PlanarLaplace) Table() *EmissionTable { return p.table }

// Emission implements Perturber. A zero or negative alpha is rejected; the
// α→0 limit (uniform output) should be modelled with the Uniform
// mechanism. Safe for concurrent use by sessions sharing the instance.
func (p *PlanarLaplace) Emission(alpha float64) (*mat.Matrix, error) {
	if err := clampFinite("alpha", alpha); err != nil {
		return nil, err
	}
	return p.table.Get(alpha)
}

// computeEmission fills one row-normalised exponential-mechanism emission
// matrix (the table's miss path).
func (p *PlanarLaplace) computeEmission(alpha float64) (*mat.Matrix, error) {
	m := p.States()
	e := mat.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		row := e.Row(i)
		drow := p.dist.Row(i)
		for j := 0; j < m; j++ {
			row[j] = math.Exp(-alpha * drow[j])
		}
		row.Normalize()
	}
	return e, nil
}

// SampleContinuous draws a perturbed point from the continuous planar
// Laplace centred on the cell center of u, in user units: the angle is
// uniform and the radius follows the distribution with density
// α²·r·e^{−αr}, sampled by inverting its CDF with the Lambert W₋₁ branch
// as in [8] §4.1.
func (p *PlanarLaplace) SampleContinuous(rng Rand, u int, alpha float64) (x, y float64, err error) {
	if err := clampFinite("alpha", alpha); err != nil {
		return 0, 0, err
	}
	if u < 0 || u >= p.States() {
		return 0, 0, fmt.Errorf("lppm: state %d outside [0,%d)", u, p.States())
	}
	cx, cy := p.g.Center(u)
	theta := rng.Float64() * 2 * math.Pi
	pr := rng.Float64()
	r := -(lambertWm1((pr-1)/math.E) + 1) / alpha
	return cx + r*math.Cos(theta), cy + r*math.Sin(theta), nil
}

// SampleSnapped draws from the continuous planar Laplace and snaps the
// result back onto the grid (clamping at the map boundary).
func (p *PlanarLaplace) SampleSnapped(rng Rand, u int, alpha float64) (int, error) {
	x, y, err := p.SampleContinuous(rng, u, alpha)
	if err != nil {
		return 0, err
	}
	return p.g.Snap(x, y), nil
}

// GeoIndistinguishabilityLevel returns the certified geo-indistinguishability
// parameter of the discretised emission at budget alpha (2α; see the type
// comment).
func (p *PlanarLaplace) GeoIndistinguishabilityLevel(alpha float64) float64 {
	return 2 * alpha
}

// lambertWm1 evaluates the W₋₁ branch of the Lambert W function for
// x ∈ [−1/e, 0), i.e. the solution w ≤ −1 of w·eʷ = x. Halley iteration
// from an asymptotic initial guess; accurate to ~1e-12 on the domain.
func lambertWm1(x float64) float64 {
	if x >= 0 || x < -1/math.E {
		return math.NaN()
	}
	if x == -1/math.E {
		return -1
	}
	// Initial guess: for x → 0⁻, w ≈ ln(−x) − ln(−ln(−x)); near −1/e use a
	// square-root expansion.
	var w float64
	if x > -0.25 {
		l1 := math.Log(-x)
		l2 := math.Log(-l1)
		w = l1 - l2
	} else {
		p := -math.Sqrt(2 * (1 + math.E*x))
		w = -1 + p - p*p/3
	}
	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		// Halley step.
		denom := ew*(w+1) - (w+2)*f/(2*w+2)
		dw := f / denom
		w -= dw
		if math.Abs(dw) < 1e-14*(1+math.Abs(w)) {
			break
		}
	}
	return w
}
