package lppm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"priste/internal/grid"
	"priste/internal/markov"
	"priste/internal/mat"
)

func TestUniform(t *testing.T) {
	u, err := NewUniform(4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := u.Emission(123) // budget irrelevant
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsRowStochastic(1e-12) {
		t.Fatal("not stochastic")
	}
	if e.At(0, 3) != 0.25 {
		t.Fatalf("entry = %v", e.At(0, 3))
	}
	if err := u.Begin(0); err != nil {
		t.Fatal(err)
	}
	if err := u.Observe(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewUniform(0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestIdentity(t *testing.T) {
	id, err := NewIdentity(3)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := id.Emission(1)
	if e.At(0, 0) != 1 || e.At(0, 1) != 0 {
		t.Fatal("not identity")
	}
	if _, err := NewIdentity(-1); err == nil {
		t.Error("m<0 accepted")
	}
}

func TestSampleRow(t *testing.T) {
	e := mat.FromRows([][]float64{{0.5, 0.5}, {0, 1}})
	rng := rand.New(rand.NewSource(1))
	if _, err := SampleRow(rng, e, 5); err == nil {
		t.Error("out-of-range state accepted")
	}
	for i := 0; i < 50; i++ {
		o, err := SampleRow(rng, e, 1)
		if err != nil {
			t.Fatal(err)
		}
		if o != 1 {
			t.Fatalf("deterministic row sampled %d", o)
		}
	}
	// Empirical frequency for the mixed row.
	var ones int
	const n = 100000
	for i := 0; i < n; i++ {
		o, _ := SampleRow(rng, e, 0)
		ones += o
	}
	if f := float64(ones) / n; math.Abs(f-0.5) > 0.01 {
		t.Fatalf("empirical frequency %v", f)
	}
}

func TestPlanarLaplaceEmission(t *testing.T) {
	g := grid.MustNew(4, 4, 1)
	p := NewPlanarLaplace(g)
	e, err := p.Emission(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsRowStochastic(1e-9) {
		t.Fatal("not stochastic")
	}
	// Probability decays with distance.
	if e.At(0, 0) <= e.At(0, 1) || e.At(0, 1) <= e.At(0, 15) {
		t.Fatalf("no distance decay: %v %v %v", e.At(0, 0), e.At(0, 1), e.At(0, 15))
	}
	// Symmetry for symmetric cells.
	if math.Abs(e.At(0, 1)-e.At(0, 4)) > 1e-12 {
		t.Fatalf("horizontal/vertical asymmetry: %v vs %v", e.At(0, 1), e.At(0, 4))
	}
	// Cache: same pointer for the same budget.
	e2, _ := p.Emission(1.0)
	if e2 != e {
		t.Fatal("cache miss for same alpha")
	}
	if _, err := p.Emission(0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := p.Emission(math.NaN()); err == nil {
		t.Error("NaN alpha accepted")
	}
}

// TestPlanarLaplaceGeoInd verifies the 2α-geo-indistinguishability bound of
// the discretised mechanism: for all i,i',j:
// Pr(j|i) ≤ exp(2α·d(i,i'))·Pr(j|i').
func TestPlanarLaplaceGeoInd(t *testing.T) {
	g := grid.MustNew(3, 3, 1)
	p := NewPlanarLaplace(g)
	for _, alpha := range []float64{0.2, 1, 3} {
		e, _ := p.Emission(alpha)
		lvl := p.GeoIndistinguishabilityLevel(alpha)
		m := g.States()
		for i := 0; i < m; i++ {
			for i2 := 0; i2 < m; i2++ {
				bound := math.Exp(lvl * g.Dist(i, i2))
				for j := 0; j < m; j++ {
					if e.At(i, j) > bound*e.At(i2, j)*(1+1e-9) {
						t.Fatalf("alpha=%v: Pr(%d|%d)=%v > e^{%v·d}·Pr(%d|%d)=%v",
							alpha, j, i, e.At(i, j), lvl, j, i2, bound*e.At(i2, j))
					}
				}
			}
		}
	}
}

// Larger budgets concentrate more mass on the true cell.
func TestPlanarLaplaceBudgetMonotonicity(t *testing.T) {
	g := grid.MustNew(5, 5, 1)
	p := NewPlanarLaplace(g)
	prev := 0.0
	for _, alpha := range []float64{0.1, 0.5, 1, 2, 5} {
		e, _ := p.Emission(alpha)
		self := e.At(12, 12)
		if self <= prev {
			t.Fatalf("self-probability not increasing at alpha=%v: %v <= %v", alpha, self, prev)
		}
		prev = self
	}
}

func TestLambertWm1(t *testing.T) {
	// w·e^w = x must hold on the branch w ≤ -1.
	for _, x := range []float64{-1 / math.E, -0.367, -0.2, -0.05, -1e-3, -1e-8} {
		w := lambertWm1(x)
		if w > -1+1e-9 {
			t.Fatalf("x=%v: w=%v not on W₋₁ branch", x, w)
		}
		if got := w * math.Exp(w); math.Abs(got-x) > 1e-10*(1+math.Abs(x)) {
			t.Fatalf("x=%v: w·e^w = %v", x, got)
		}
	}
	if !math.IsNaN(lambertWm1(0.1)) || !math.IsNaN(lambertWm1(-1)) {
		t.Error("out-of-domain inputs should be NaN")
	}
}

// TestSampleContinuousRadius: the mean radius of the planar Laplace is 2/α.
func TestSampleContinuousRadius(t *testing.T) {
	g := grid.MustNew(9, 9, 1)
	p := NewPlanarLaplace(g)
	rng := rand.New(rand.NewSource(11))
	const alpha = 2.0
	const n = 60000
	cx, cy := g.Center(40)
	var sum float64
	for i := 0; i < n; i++ {
		x, y, err := p.SampleContinuous(rng, 40, alpha)
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Hypot(x-cx, y-cy)
	}
	mean := sum / n
	if math.Abs(mean-2/alpha) > 0.02 {
		t.Fatalf("mean radius = %v, want %v", mean, 2/alpha)
	}
}

func TestSampleSnappedInRange(t *testing.T) {
	g := grid.MustNew(4, 4, 1)
	p := NewPlanarLaplace(g)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		o, err := p.SampleSnapped(rng, 0, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if o < 0 || o >= 16 {
			t.Fatalf("snapped out of range: %d", o)
		}
	}
	if _, err := p.SampleSnapped(rng, 99, 1); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func newDLSChain(t *testing.T, g *grid.Grid) *markov.Chain {
	t.Helper()
	c, err := markov.GaussianChain(g, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDeltaLocationSetValidation(t *testing.T) {
	g := grid.MustNew(3, 3, 1)
	c := newDLSChain(t, g)
	pi := markov.Uniform(9)
	if _, err := NewDeltaLocationSet(g, c, pi, -0.1); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := NewDeltaLocationSet(g, c, pi, 1); err == nil {
		t.Error("delta=1 accepted")
	}
	if _, err := NewDeltaLocationSet(g, c, markov.Uniform(4), 0.1); err == nil {
		t.Error("pi mismatch accepted")
	}
	if _, err := NewDeltaLocationSet(g, c, mat.Vector{1, 1, 1, 1, 1, 1, 1, 1, 1}, 0.1); err == nil {
		t.Error("non-distribution pi accepted")
	}
	g2 := grid.MustNew(2, 2, 1)
	if _, err := NewDeltaLocationSet(g2, c, markov.Uniform(4), 0.1); err == nil {
		t.Error("chain/grid mismatch accepted")
	}
}

func TestDeltaLocationSetLifecycle(t *testing.T) {
	g := grid.MustNew(3, 3, 1)
	c := newDLSChain(t, g)
	d, err := NewDeltaLocationSet(g, c, markov.Uniform(9), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Emission(1); err == nil {
		t.Error("Emission before Begin accepted")
	}
	if err := d.Begin(1); err == nil {
		t.Error("out-of-order Begin accepted")
	}
	if err := d.Begin(0); err != nil {
		t.Fatal(err)
	}
	// With uniform prior and delta=0.2, the set holds ~80% of states.
	if n := len(d.Set()); n < 7 || n > 9 {
		t.Fatalf("set size %d", n)
	}
	e, err := d.Emission(1)
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsRowStochastic(1e-9) {
		t.Fatal("emission not stochastic")
	}
	// Out-of-set columns must be zero.
	in := make(map[int]bool)
	for _, s := range d.Set() {
		in[s] = true
	}
	for j := 0; j < 9; j++ {
		if !in[j] && e.At(0, j) != 0 {
			t.Fatalf("out-of-set column %d has mass %v", j, e.At(0, j))
		}
	}
	if err := d.Observe(1, 0, nil); err == nil {
		t.Error("Observe with wrong timestamp accepted")
	}
	if err := d.Observe(0, 99, nil); err == nil {
		t.Error("out-of-range observation accepted")
	}
	obs := d.Set()[0]
	if err := d.Observe(0, obs, nil); err != nil {
		t.Fatal(err)
	}
	post := d.Posterior()
	if !post.IsDistribution(1e-9) {
		t.Fatalf("posterior not a distribution: %v", post)
	}
	// Posterior concentrates near the observation.
	if post.ArgMax() != obs {
		t.Fatalf("posterior mode %d, observed %d", post.ArgMax(), obs)
	}
	if err := d.Begin(1); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaLocationSetShrinksWithDelta(t *testing.T) {
	g := grid.MustNew(4, 4, 1)
	c := newDLSChain(t, g)
	sizes := make([]int, 0, 3)
	for _, delta := range []float64{0.0, 0.3, 0.7} {
		d, err := NewDeltaLocationSet(g, c, markov.Uniform(16), delta)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Begin(0); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(d.Set()))
	}
	if !(sizes[0] >= sizes[1] && sizes[1] >= sizes[2]) {
		t.Fatalf("set sizes not decreasing with delta: %v", sizes)
	}
	if sizes[0] != 16 {
		t.Fatalf("delta=0 should keep all states, got %d", sizes[0])
	}
}

// Property: the δ-location set always captures ≥ 1−δ of the prior mass and
// is minimal (dropping its least-probable member would fall below 1−δ).
func TestDeltaLocationSetMinimalCoverProperty(t *testing.T) {
	g := grid.MustNew(3, 3, 1)
	c := newDLSChain(t, g)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		delta := rng.Float64() * 0.9
		pi := mat.NewVector(9)
		for i := range pi {
			pi[i] = rng.ExpFloat64()
		}
		pi.Normalize()
		d, err := NewDeltaLocationSet(g, c, pi, delta)
		if err != nil {
			return false
		}
		if err := d.Begin(0); err != nil {
			return false
		}
		var mass, minMass float64
		minMass = math.Inf(1)
		for _, s := range d.Set() {
			mass += pi[s]
			if pi[s] < minMass {
				minMass = pi[s]
			}
		}
		if mass < 1-delta-1e-9 {
			return false
		}
		// Minimality: removing the smallest member must undershoot.
		return mass-minMass < 1-delta+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaLocationSetSurrogate: with a tiny set, a far-away true location
// must still produce a valid emission row concentrated inside the set.
func TestDeltaLocationSetSurrogate(t *testing.T) {
	g := grid.MustNew(5, 1, 1) // 1-D map for clarity
	// Strong drift to state 0.
	tr := mat.NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		tr.Set(i, 0, 1)
	}
	c := markov.MustNewChain(tr)
	pi := mat.Vector{0.96, 0.01, 0.01, 0.01, 0.01}
	d, err := NewDeltaLocationSet(g, c, pi, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Begin(0); err != nil {
		t.Fatal(err)
	}
	if len(d.Set()) != 1 || d.Set()[0] != 0 {
		t.Fatalf("set = %v", d.Set())
	}
	e, err := d.Emission(1)
	if err != nil {
		t.Fatal(err)
	}
	// Every row, including far state 4, must emit state 0 with prob 1.
	for i := 0; i < 5; i++ {
		if e.At(i, 0) != 1 {
			t.Fatalf("row %d = %v", i, e.Row(i))
		}
	}
}

// TestDeltaLocationSetImpossibleObservation: observing outside the set
// falls back to the prior instead of corrupting the filter.
func TestDeltaLocationSetImpossibleObservation(t *testing.T) {
	g := grid.MustNew(5, 1, 1)
	tr := mat.NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		tr.Set(i, 0, 1)
	}
	c := markov.MustNewChain(tr)
	pi := mat.Vector{0.96, 0.01, 0.01, 0.01, 0.01}
	d, _ := NewDeltaLocationSet(g, c, pi, 0.3)
	_ = d.Begin(0)
	if _, err := d.Emission(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Observe(0, 4, nil); err != nil { // state 4 has zero emission mass
		t.Fatal(err)
	}
	if !d.Posterior().IsDistribution(1e-9) {
		t.Fatal("posterior corrupted")
	}
}

func TestDeltaLocationSetEmissionCache(t *testing.T) {
	g := grid.MustNew(3, 3, 1)
	c := newDLSChain(t, g)
	d, _ := NewDeltaLocationSet(g, c, markov.Uniform(9), 0.2)
	_ = d.Begin(0)
	e1, _ := d.Emission(1)
	e2, _ := d.Emission(1)
	if e1 != e2 {
		t.Error("cache miss for same alpha within a timestamp")
	}
	e3, _ := d.Emission(0.5)
	if e3 == e1 {
		t.Error("different alpha returned cached matrix")
	}
}
