// Package lppm implements the location-privacy-preserving mechanisms the
// paper builds on: the planar Laplace mechanism of Geo-indistinguishability
// [Andrés et al., CCS 2013] discretised to a grid map (§IV-C), the
// δ-location-set mechanism of [Xiao & Xiong, CCS 2015] (§IV-D), and simple
// uniform/identity baselines. An LPPM is modelled, as in §II-A, as an
// emission matrix taking the user's true location as input and producing a
// perturbed location.
package lppm

import (
	"fmt"
	"math"

	"priste/internal/mat"
)

// Rand is the minimal random source the mechanisms draw from. Both
// math/rand.*Rand and math/rand/v2.*Rand satisfy it; durable sessions use
// a binary-marshalable PCG-backed implementation (core.SessionRNG) so a
// persisted session resumes with the exact candidate sequence an
// uninterrupted run would have drawn.
type Rand interface {
	// Float64 returns a uniform draw from [0,1).
	Float64() float64
}

// Perturber is the stateful mechanism interface the PriSTE release loop
// drives. A timestamp proceeds as: Begin(t); one or more Emission(alpha)
// calls as the framework calibrates the budget; Observe(t, obs) once a
// perturbed location is released.
type Perturber interface {
	// States returns the size m of the location domain.
	States() int
	// Begin prepares the mechanism for timestamp t (e.g. the δ-location
	// set advances its Markov prior). Timestamps must be visited in
	// order starting from 0.
	Begin(t int) error
	// Emission returns the row-stochastic emission matrix in effect at
	// the current timestamp for privacy budget alpha. The matrix is owned
	// by the mechanism and must not be mutated; it remains valid until
	// the next Emission or Begin call. Every entry must be finite and
	// non-negative — implementations validate at build time (see
	// ValidateEmission), which lets the release loop feed columns to the
	// quantifier's trusted entry points without a per-candidate O(m)
	// validation sweep.
	Emission(alpha float64) (*mat.Matrix, error)
	// Observe commits the released observation for the current timestamp
	// (posterior update for stateful mechanisms). col is the emission
	// column actually used for the release — col[i] = Pr(obs | u = s_i) —
	// which may come from a different matrix than the last Emission call
	// (the PriSTE framework falls back to a uniform release when the
	// budget underflows). col may be a caller-owned scratch buffer that
	// is overwritten after Observe returns (the framework's candidate
	// loop reuses one buffer per session); implementations must not
	// retain it and must copy what they need.
	Observe(t, obs int, col mat.Vector) error
}

// HistoryIndependent marks a Perturber whose behaviour does not depend on
// the release history: Begin and Observe are no-ops and Emission is a pure
// function of the budget. Such a mechanism can be shared by every session
// of a compiled core.Plan (its Emission must then be safe for concurrent
// use), and its certified release verdicts are fully determined by the
// (budget, observation) history — the property the certified-release
// cache relies on. The δ-location-set mechanism is NOT history-independent
// (its prior advances on every Begin/Observe) and must stay per-session.
type HistoryIndependent interface {
	Perturber
	// HistoryIndependent is a marker; implementations do nothing.
	HistoryIndependent()
}

// SampleRow draws an observation from row u of an emission matrix.
func SampleRow(rng Rand, e *mat.Matrix, u int) (int, error) {
	if u < 0 || u >= e.Rows {
		return 0, fmt.Errorf("lppm: state %d outside [0,%d)", u, e.Rows)
	}
	row := e.Row(u)
	x := rng.Float64()
	var acc float64
	for j, p := range row {
		acc += p
		if x < acc {
			return j, nil
		}
	}
	for j := e.Cols - 1; j >= 0; j-- {
		if row[j] > 0 {
			return j, nil
		}
	}
	return 0, fmt.Errorf("lppm: emission row %d sums to zero", u)
}

// Uniform is the fully-uninformative mechanism: every row is uniform over
// the map regardless of budget. It is the α→0 limit the paper's
// convergence argument (§IV-C) relies on.
type Uniform struct {
	m int
	e *mat.Matrix
}

// NewUniform returns a uniform mechanism over m states.
func NewUniform(m int) (*Uniform, error) {
	if m <= 0 {
		return nil, fmt.Errorf("lppm: m must be positive")
	}
	e := mat.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		row := e.Row(i)
		for j := range row {
			row[j] = 1 / float64(m)
		}
	}
	return &Uniform{m: m, e: e}, nil
}

// States implements Perturber.
func (u *Uniform) States() int { return u.m }

// Begin implements Perturber.
func (u *Uniform) Begin(int) error { return nil }

// Emission implements Perturber.
func (u *Uniform) Emission(float64) (*mat.Matrix, error) { return u.e, nil }

// Observe implements Perturber.
func (u *Uniform) Observe(int, int, mat.Vector) error { return nil }

// HistoryIndependent marks the mechanism as history-independent.
func (u *Uniform) HistoryIndependent() {}

// Identity is the no-privacy mechanism: the true location is released
// verbatim. Useful as the upper baseline in utility experiments and as a
// worst case in privacy tests.
type Identity struct {
	m int
	e *mat.Matrix
}

// NewIdentity returns an identity mechanism over m states.
func NewIdentity(m int) (*Identity, error) {
	if m <= 0 {
		return nil, fmt.Errorf("lppm: m must be positive")
	}
	return &Identity{m: m, e: mat.Identity(m)}, nil
}

// States implements Perturber.
func (id *Identity) States() int { return id.m }

// Begin implements Perturber.
func (id *Identity) Begin(int) error { return nil }

// Emission implements Perturber.
func (id *Identity) Emission(float64) (*mat.Matrix, error) { return id.e, nil }

// Observe implements Perturber.
func (id *Identity) Observe(int, int, mat.Vector) error { return nil }

// HistoryIndependent marks the mechanism as history-independent.
func (id *Identity) HistoryIndependent() {}

// ValidateEmission checks the Perturber.Emission contract: every entry
// finite and non-negative. Mechanisms call it once when a matrix is
// materialised (the emission table's miss path, the δ-location-set
// rebuild), which is what entitles downstream consumers to the
// quantifier's trusted (sweep-free) Check/Commit entry points.
func ValidateEmission(e *mat.Matrix) error {
	for i, v := range e.Data {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lppm: emission[%d,%d] = %g invalid", i/e.Cols, i%e.Cols, v)
		}
	}
	return nil
}

// clampFinite validates a strictly-positive finite parameter.
func clampFinite(name string, v float64) error {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("lppm: %s must be positive and finite, got %g", name, v)
	}
	return nil
}
