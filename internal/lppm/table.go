package lppm

import (
	"container/list"
	"fmt"
	"math"
	"sync"

	"priste/internal/mat"
)

// EmissionTable is a bounded, concurrency-safe per-budget emission-matrix
// cache. History-independent mechanisms (see HistoryIndependent) compute
// the same emission matrix for a given budget at every timestamp and in
// every session, so one table can back an arbitrary number of sessions
// sharing a compiled plan: the PriSTE release loop repeatedly halves the
// budget (α, α/2, α/4, …) and revisits the same handful of values, and
// with a shared table each value is materialised once per deployment
// instead of once per session.
//
// Eviction is LRU on the budget key, so a deployment serving varied
// budgets stays bounded instead of growing one matrix per distinct value.
type EmissionTable struct {
	compute func(alpha float64) (*mat.Matrix, error)
	max     int

	mu      sync.Mutex
	ll      *list.List // most recently used at the front
	entries map[uint64]*list.Element

	hits, misses, evictions uint64
}

type tableEntry struct {
	key uint64
	em  *mat.Matrix
}

// NewEmissionTable returns a table bounded to max entries, filling misses
// with compute. max must be positive.
func NewEmissionTable(max int, compute func(alpha float64) (*mat.Matrix, error)) *EmissionTable {
	if max <= 0 {
		panic(fmt.Sprintf("lppm: emission table capacity %d must be positive", max))
	}
	return &EmissionTable{
		compute: compute,
		max:     max,
		ll:      list.New(),
		entries: make(map[uint64]*list.Element, max),
	}
}

// Get returns the emission matrix for the given budget, computing and
// retaining it on a miss. The returned matrix is shared: callers must not
// mutate it. Safe for concurrent use.
func (t *EmissionTable) Get(alpha float64) (*mat.Matrix, error) {
	key := math.Float64bits(alpha)
	t.mu.Lock()
	if el, ok := t.entries[key]; ok {
		t.ll.MoveToFront(el)
		t.hits++
		em := el.Value.(*tableEntry).em
		t.mu.Unlock()
		return em, nil
	}
	t.misses++
	t.mu.Unlock()

	// Compute outside the lock so cache hits from other sessions are not
	// blocked behind an O(m²) fill; a racing fill of the same budget is
	// resolved by the re-check below (one of the two results is dropped).
	em, err := t.compute(alpha)
	if err != nil {
		return nil, err
	}
	// Validate once per materialised matrix: consumers are entitled to
	// skip per-candidate emission sweeps (see Perturber.Emission).
	if err := ValidateEmission(em); err != nil {
		return nil, err
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.entries[key]; ok {
		t.ll.MoveToFront(el)
		return el.Value.(*tableEntry).em, nil
	}
	t.entries[key] = t.ll.PushFront(&tableEntry{key: key, em: em})
	for len(t.entries) > t.max {
		back := t.ll.Back()
		t.ll.Remove(back)
		delete(t.entries, back.Value.(*tableEntry).key)
		t.evictions++
	}
	return em, nil
}

// Len returns the number of retained matrices.
func (t *EmissionTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Stats returns the lifetime hit/miss/eviction counters.
func (t *EmissionTable) Stats() (hits, misses, evictions uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, t.misses, t.evictions
}
