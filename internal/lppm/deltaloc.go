package lppm

import (
	"fmt"
	"math"
	"sort"

	"priste/internal/grid"
	"priste/internal/markov"
	"priste/internal/mat"
)

// DeltaLocationSet implements the δ-location-set mechanism of §IV-D
// [Xiao & Xiong, CCS 2015; LocLok, VLDB 2017]: at each timestamp the
// Markov prior p⁻ₜ = p⁺ₜ₋₁·M is advanced, the δ-location set ΔXₜ — the
// minimal set of states whose prior mass is at least 1−δ — is constructed,
// and the underlying planar Laplace mechanism is restricted to ΔXₜ (both
// its input surrogate and its output domain). After a release the
// posterior p⁺ₜ is updated by Bayes' rule (Eq. 21).
//
// True locations outside ΔXₜ are mapped to the nearest cell inside the set
// (the "surrogate" of [9]) before perturbation, so the emission matrix
// stays defined for every state.
type DeltaLocationSet struct {
	g     *grid.Grid
	chain *markov.Chain
	delta float64

	post  mat.Vector // p⁺ at the previous timestamp
	prior mat.Vector // p⁻ at the current timestamp
	set   []int      // ΔXₜ, sorted by state index
	inSet []bool

	cur     int // current timestamp, -1 before the first Begin
	em      *mat.Matrix
	emAlpha float64
	dist    *mat.Matrix
}

// NewDeltaLocationSet returns a mechanism with initial distribution pi
// (the paper's experiments use uniform).
func NewDeltaLocationSet(g *grid.Grid, chain *markov.Chain, pi mat.Vector, delta float64) (*DeltaLocationSet, error) {
	m := g.States()
	if chain.States() != m {
		return nil, fmt.Errorf("lppm: chain has %d states, grid has %d", chain.States(), m)
	}
	if len(pi) != m {
		return nil, fmt.Errorf("lppm: pi length %d want %d", len(pi), m)
	}
	if !pi.IsDistribution(1e-8) {
		return nil, fmt.Errorf("lppm: pi is not a distribution")
	}
	if delta < 0 || delta >= 1 {
		return nil, fmt.Errorf("lppm: delta %g outside [0,1)", delta)
	}
	return &DeltaLocationSet{
		g:     g,
		chain: chain,
		delta: delta,
		post:  pi.Clone(),
		cur:   -1,
		dist:  g.DistanceMatrix(),
	}, nil
}

// States implements Perturber.
func (d *DeltaLocationSet) States() int { return d.g.States() }

// Delta returns δ.
func (d *DeltaLocationSet) Delta() float64 { return d.delta }

// Set returns the current δ-location set ΔXₜ (valid after Begin). Callers
// must not mutate the returned slice.
func (d *DeltaLocationSet) Set() []int { return d.set }

// Begin implements Perturber: advances the Markov prior and rebuilds ΔXₜ.
func (d *DeltaLocationSet) Begin(t int) error {
	if t != d.cur+1 {
		return fmt.Errorf("lppm: Begin(%d) out of order, expected %d", t, d.cur+1)
	}
	d.cur = t
	if t == 0 {
		// p⁻₀ is the initial distribution itself (p⁺₋₁ = π, no transition
		// precedes the first timestamp).
		d.prior = d.post.Clone()
	} else {
		d.prior = d.chain.Step(d.post)
	}
	d.buildSet()
	d.em = nil
	d.emAlpha = 0
	return nil
}

// buildSet selects the minimal prefix of states, by decreasing prior
// probability, whose mass reaches 1−δ.
func (d *DeltaLocationSet) buildSet() {
	m := d.States()
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d.prior[idx[a]] > d.prior[idx[b]] })
	need := 1 - d.delta
	var acc float64
	var set []int
	for _, s := range idx {
		set = append(set, s)
		acc += d.prior[s]
		if acc >= need-1e-12 {
			break
		}
	}
	sort.Ints(set)
	d.set = set
	d.inSet = make([]bool, m)
	for _, s := range set {
		d.inSet[s] = true
	}
}

// surrogate returns the nearest in-set state to u (u itself if inside).
func (d *DeltaLocationSet) surrogate(u int) int {
	if d.inSet[u] {
		return u
	}
	best, bd := d.set[0], d.dist.At(u, d.set[0])
	for _, s := range d.set[1:] {
		if dd := d.dist.At(u, s); dd < bd {
			best, bd = s, dd
		}
	}
	return best
}

// Emission implements Perturber: a planar Laplace restricted to ΔXₜ. Row i
// is the normalised exponential kernel from surrogate(i) over the in-set
// columns only; out-of-set columns have probability zero.
func (d *DeltaLocationSet) Emission(alpha float64) (*mat.Matrix, error) {
	if d.cur < 0 {
		return nil, fmt.Errorf("lppm: Emission before Begin")
	}
	if err := clampFinite("alpha", alpha); err != nil {
		return nil, err
	}
	if d.em != nil && d.emAlpha == alpha {
		return d.em, nil
	}
	m := d.States()
	e := mat.NewMatrix(m, m)
	// Rows are identical for states sharing a surrogate; compute kernels
	// once per in-set anchor.
	kernels := make(map[int]mat.Vector, len(d.set))
	kernel := func(anchor int) mat.Vector {
		if k, ok := kernels[anchor]; ok {
			return k
		}
		k := mat.NewVector(m)
		for _, j := range d.set {
			k[j] = math.Exp(-alpha * d.dist.At(anchor, j))
		}
		k.Normalize()
		kernels[anchor] = k
		return k
	}
	for i := 0; i < m; i++ {
		copy(e.Row(i), kernel(d.surrogate(i)))
	}
	if err := ValidateEmission(e); err != nil {
		return nil, err
	}
	d.em = e
	d.emAlpha = alpha
	return e, nil
}

// Observe implements Perturber: Bayes posterior update (Eq. 21) using the
// emission column the framework actually released with. When col is nil
// the column of the most recent Emission matrix is used.
func (d *DeltaLocationSet) Observe(t, obs int, col mat.Vector) error {
	if t != d.cur {
		return fmt.Errorf("lppm: Observe(%d) does not match current timestamp %d", t, d.cur)
	}
	if obs < 0 || obs >= d.States() {
		return fmt.Errorf("lppm: observation %d outside [0,%d)", obs, d.States())
	}
	if col == nil {
		if d.em == nil {
			return fmt.Errorf("lppm: Observe before Emission and without a column")
		}
		col = d.em.Col(obs)
	}
	if len(col) != d.States() {
		return fmt.Errorf("lppm: emission column length %d want %d", len(col), d.States())
	}
	post := mat.NewVector(d.States())
	for i := range post {
		post[i] = d.prior[i] * col[i]
	}
	if post.Normalize() == 0 {
		// The observation was impossible under the prior (e.g. drawn by a
		// different mechanism); fall back to the prior rather than
		// corrupting the filter.
		post = d.prior.Clone()
	}
	d.post = post
	return nil
}

// Posterior returns a copy of the current posterior p⁺.
func (d *DeltaLocationSet) Posterior() mat.Vector { return d.post.Clone() }
