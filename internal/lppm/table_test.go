package lppm

import (
	"sync"
	"testing"

	"priste/internal/grid"
)

// TestEmissionTableBounded: the per-budget cache must stay bounded under
// adversarially varied budgets (the unbounded-map regression) and keep
// returning correct matrices after eviction.
func TestEmissionTableBounded(t *testing.T) {
	g := grid.MustNew(3, 3, 1)
	p := NewPlanarLaplace(g)
	for i := 1; i <= 4*maxPLMCache; i++ {
		alpha := float64(i) / 7
		e, err := p.Emission(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !e.IsRowStochastic(1e-9) {
			t.Fatalf("emission at alpha=%g not row-stochastic", alpha)
		}
	}
	if n := p.Table().Len(); n > maxPLMCache {
		t.Fatalf("table holds %d matrices, bound %d", n, maxPLMCache)
	}
	if _, _, evictions := p.Table().Stats(); evictions == 0 {
		t.Fatal("no evictions after overflow")
	}
}

// TestEmissionTableSharedHits: repeated budgets are served from the table
// (one compute per distinct value), including via the shared-instance path
// used by plans.
func TestEmissionTableSharedHits(t *testing.T) {
	g := grid.MustNew(3, 3, 1)
	p := NewPlanarLaplace(g)
	a, err := p.Emission(0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Emission(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same budget recomputed")
	}
	hits, misses, _ := p.Table().Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d after two identical gets", hits, misses)
	}
}

// TestEmissionTableConcurrent exercises the table from many goroutines,
// as sessions sharing a plan do (run under -race).
func TestEmissionTableConcurrent(t *testing.T) {
	g := grid.MustNew(4, 4, 1)
	p := NewPlanarLaplace(g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				alpha := 1.0 / float64(1+(i+w)%5)
				if _, err := p.Emission(alpha); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := p.Table().Len(); n != 5 {
		t.Fatalf("table holds %d matrices, want 5 distinct budgets", n)
	}
}
