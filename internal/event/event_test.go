package event

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"priste/internal/grid"
	"priste/internal/markov"
	"priste/internal/mat"
)

func TestExprEvalFig1Cases(t *testing.T) {
	// Fig. 1 cases on a 2-timestamp trajectory over states {s0, s1, s2}.
	// (a) (u0=s0) ∧ (u0=s1): always false — can't be in two places at once.
	a := And(Pred(0, 0), Pred(0, 1))
	// (b) (u0=s0) ∨ (u0=s1): sensitive area at time 0.
	b := Or(Pred(0, 0), Pred(0, 1))
	// (c) (u0=s0) ∧ (u1=s0): trajectory s0 -> s0.
	c := And(Pred(0, 0), Pred(1, 0))
	// (d) (u0=s0) ∨ (u1=s0).
	d := Or(Pred(0, 0), Pred(1, 0))
	// (e) ((u0=s0)∨(u0=s1)) ∧ ((u1=s0)∨(u1=s1)).
	e := And(Or(Pred(0, 0), Pred(0, 1)), Or(Pred(1, 0), Pred(1, 1)))
	// (f) ((u0=s0)∨(u0=s1)) ∨ ((u1=s0)∨(u1=s1)).
	f := Or(Or(Pred(0, 0), Pred(0, 1)), Or(Pred(1, 0), Pred(1, 1)))

	cases := []struct {
		name string
		e    *Expr
		traj []int
		want bool
	}{
		{"a-imposs", a, []int{0, 0}, false},
		{"a-imposs2", a, []int{1, 1}, false},
		{"b-in", b, []int{1, 2}, true},
		{"b-out", b, []int{2, 0}, false},
		{"c-hit", c, []int{0, 0}, true},
		{"c-miss", c, []int{0, 1}, false},
		{"d-first", d, []int{0, 2}, true},
		{"d-second", d, []int{2, 0}, true},
		{"d-none", d, []int{2, 2}, false},
		{"e-hit", e, []int{0, 1}, true},
		{"e-miss", e, []int{0, 2}, false},
		{"f-any", f, []int{2, 1}, true},
		{"f-none", f, []int{2, 2}, false},
	}
	for _, tc := range cases {
		if got := tc.e.Eval(tc.traj); got != tc.want {
			t.Errorf("%s: Eval(%v) = %v, want %v", tc.name, tc.traj, got, tc.want)
		}
	}
}

func TestExprNot(t *testing.T) {
	e := Not(Pred(0, 1))
	if !e.Eval([]int{0}) || e.Eval([]int{1}) {
		t.Fatal("Not evaluation wrong")
	}
}

func TestExprEvalOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pred(3, 0).Eval([]int{0, 1})
}

func TestExprConstructorsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"And-empty": func() { And() },
		"Or-nil":    func() { Or(nil) },
		"Not-nil":   func() { Not(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExprSingleChildCollapse(t *testing.T) {
	p := Pred(1, 2)
	if And(p) != p || Or(p) != p {
		t.Fatal("single-child And/Or should return the child")
	}
}

func TestExprMetadata(t *testing.T) {
	e := And(Or(Pred(2, 1), Pred(5, 0)), Pred(3, 4))
	if e.MaxTime() != 5 {
		t.Errorf("MaxTime = %d", e.MaxTime())
	}
	if e.MinTime() != 2 {
		t.Errorf("MinTime = %d", e.MinTime())
	}
	if e.NumPredicates() != 3 {
		t.Errorf("NumPredicates = %d", e.NumPredicates())
	}
	ps := e.Predicates()
	if len(ps) != 3 || ps[0].T != 2 || ps[2].T != 5 {
		t.Errorf("Predicates = %v", ps)
	}
	s := e.String()
	if !strings.Contains(s, "∧") || !strings.Contains(s, "∨") || !strings.Contains(s, "(u2=s1)") {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(Not(Pred(0, 0)).String(), "¬") {
		t.Error("Not rendering missing ¬")
	}
}

func TestPresenceBasics(t *testing.T) {
	r := grid.MustRegionOf(5, 1, 2)
	p := MustNewPresence(r, 2, 4)
	if p.States() != 5 || p.Width() != 2 || p.Length() != 3 {
		t.Fatalf("metadata wrong: %v %v %v", p.States(), p.Width(), p.Length())
	}
	if s, e := p.Window(); s != 2 || e != 4 {
		t.Fatalf("Window = %d,%d", s, e)
	}
	if !p.Sticky() {
		t.Error("PRESENCE must be sticky")
	}
	if !p.Truth([]int{0, 0, 1, 0, 0}) {
		t.Error("visit at t=2 should be true")
	}
	if p.Truth([]int{1, 1, 0, 3, 4}) {
		t.Error("no in-window visit should be false")
	}
	if !strings.Contains(p.String(), "PRESENCE") {
		t.Errorf("String = %q", p.String())
	}
}

func TestPresenceValidation(t *testing.T) {
	if _, err := NewPresence(grid.NewRegion(3), 0, 1); err == nil {
		t.Error("empty region accepted")
	}
	r := grid.MustRegionOf(3, 0)
	if _, err := NewPresence(r, -1, 2); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := NewPresence(r, 3, 2); err == nil {
		t.Error("end < start accepted")
	}
}

func TestPresenceExprMatchesTruth(t *testing.T) {
	r := grid.MustRegionOf(3, 0, 2)
	p := MustNewPresence(r, 1, 2)
	e := p.Expr()
	for _, traj := range [][]int{{0, 0, 0}, {1, 1, 1}, {1, 2, 1}, {1, 1, 0}, {2, 1, 1}} {
		if e.Eval(traj) != p.Truth(traj) {
			t.Errorf("mismatch on %v", traj)
		}
	}
}

func TestPresenceRegionAt(t *testing.T) {
	p := MustNewPresence(grid.MustRegionOf(3, 0), 1, 2)
	if p.RegionAt(1) != p.Region {
		t.Error("RegionAt should return the region")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic outside window")
		}
	}()
	p.RegionAt(0)
}

func TestPatternBasics(t *testing.T) {
	// Example II.2: regions {s0,s1} at t=1 and {s1,s2} at t=2.
	r1 := grid.MustRegionOf(3, 0, 1)
	r2 := grid.MustRegionOf(3, 1, 2)
	p := MustNewPattern([]*grid.Region{r1, r2}, 1)
	if s, e := p.Window(); s != 1 || e != 2 {
		t.Fatalf("Window = %d,%d", s, e)
	}
	if p.Sticky() {
		t.Error("PATTERN must not be sticky")
	}
	if p.Width() != 2 || p.Length() != 2 {
		t.Fatalf("Width/Length = %d/%d", p.Width(), p.Length())
	}
	if !p.Truth([]int{2, 0, 2}) {
		t.Error("trajectory through both regions should satisfy")
	}
	if p.Truth([]int{2, 2, 2}) {
		t.Error("missing first region should fail")
	}
	if p.Truth([]int{2, 0, 0}) {
		t.Error("missing second region should fail")
	}
	if p.TrajectoryCount() != 4 {
		t.Errorf("TrajectoryCount = %d", p.TrajectoryCount())
	}
	if !strings.Contains(p.String(), "PATTERN") {
		t.Errorf("String = %q", p.String())
	}
}

func TestPatternValidation(t *testing.T) {
	if _, err := NewPattern(nil, 0); err == nil {
		t.Error("empty regions accepted")
	}
	r := grid.MustRegionOf(3, 0)
	if _, err := NewPattern([]*grid.Region{r}, -1); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := NewPattern([]*grid.Region{r, grid.NewRegion(3)}, 0); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := NewPattern([]*grid.Region{r, grid.MustRegionOf(4, 0)}, 0); err == nil {
		t.Error("mismatched state space accepted")
	}
}

func TestPatternExprMatchesTruthProperty(t *testing.T) {
	r1 := grid.MustRegionOf(3, 0, 1)
	r2 := grid.MustRegionOf(3, 1, 2)
	p := MustNewPattern([]*grid.Region{r1, r2}, 1)
	e := p.Expr()
	f := func(a, b, c uint8) bool {
		traj := []int{int(a % 3), int(b % 3), int(c % 3)}
		return e.Eval(traj) == p.Truth(traj)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleLocationAndTrajectory(t *testing.T) {
	sl, err := SingleLocation(4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.Truth([]int{0, 0, 3}) || sl.Truth([]int{0, 0, 2}) {
		t.Error("single location truth wrong")
	}
	st, err := SingleTrajectory(4, 1, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truth([]int{0, 2, 3}) || st.Truth([]int{0, 2, 2}) {
		t.Error("single trajectory truth wrong")
	}
	if _, err := SingleTrajectory(4, 0, nil); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := SingleLocation(4, 0, 9); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func chain3() *markov.Chain {
	return markov.MustNewChain(mat.FromRows([][]float64{
		{0.1, 0.2, 0.7},
		{0.4, 0.1, 0.5},
		{0, 0.1, 0.9},
	}))
}

func TestNaivePriorSimplePredicate(t *testing.T) {
	// Pr(u1 = s2) starting uniform = (pi·M)[2].
	c := chain3()
	pi := markov.Uniform(3)
	got, err := NaivePrior(c, pi, Pred(1, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Step(pi)[2]
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("prior = %v want %v", got, want)
	}
}

func TestNaivePriorComplementProperty(t *testing.T) {
	c := chain3()
	pi := markov.Uniform(3)
	e := Or(Pred(1, 0), And(Pred(0, 2), Pred(2, 1)))
	p, err := NaivePrior(c, pi, e, 3)
	if err != nil {
		t.Fatal(err)
	}
	np, err := NaivePrior(c, pi, Not(e), 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p+np-1) > 1e-12 {
		t.Fatalf("Pr(E)+Pr(¬E) = %v", p+np)
	}
}

func TestNaivePriorErrors(t *testing.T) {
	c := chain3()
	if _, err := NaivePrior(c, markov.Uniform(3), nil, 2); err == nil {
		t.Error("nil expr accepted")
	}
	if _, err := NaivePrior(c, markov.Uniform(3), Pred(5, 0), 3); err == nil {
		t.Error("horizon not covering expr accepted")
	}
	if _, err := NaivePrior(c, markov.Uniform(2), Pred(0, 0), 1); err == nil {
		t.Error("mismatched pi accepted")
	}
	if _, err := NaivePrior(c, mat.Vector{1, 1, 1}, Pred(0, 0), 1); err == nil {
		t.Error("non-distribution pi accepted")
	}
}

func uniformEmission(m int) func(t, o, s int) float64 {
	return func(_, _, _ int) float64 { return 1 / float64(m) }
}

func TestNaiveJointWithUniformEmissionIsScaledPrior(t *testing.T) {
	// With a state-independent emission, Pr(E, o) = Pr(E)·∏Pr(o_t).
	c := chain3()
	pi := markov.Uniform(3)
	e := Or(Pred(1, 0), Pred(2, 2))
	prior, _ := NaivePrior(c, pi, e, 3)
	joint, err := NaiveJoint(c, pi, e, []int{0, 1, 2}, uniformEmission(3), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := prior / 27
	if math.Abs(joint-want) > 1e-14 {
		t.Fatalf("joint = %v want %v", joint, want)
	}
}

func TestNaiveJointErrors(t *testing.T) {
	c := chain3()
	pi := markov.Uniform(3)
	if _, err := NaiveJoint(c, pi, Pred(0, 0), []int{0, 1}, nil, 2); err == nil {
		t.Error("nil emission accepted")
	}
	if _, err := NaiveJoint(c, pi, Pred(0, 0), []int{0, 1, 2}, uniformEmission(3), 2); err == nil {
		t.Error("obs longer than horizon accepted")
	}
}

func TestNaivePatternPriorMatchesGeneralEnumeration(t *testing.T) {
	c := chain3()
	pi := markov.Uniform(3)
	r1 := grid.MustRegionOf(3, 0, 1)
	r2 := grid.MustRegionOf(3, 1, 2)
	p := MustNewPattern([]*grid.Region{r1, r2}, 1)
	fast, err := NaivePatternPrior(c, pi, p)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NaivePrior(c, pi, p.Expr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-slow) > 1e-12 {
		t.Fatalf("pattern prior %v vs expr prior %v", fast, slow)
	}
}

func TestNaivePatternJointMatchesGeneralEnumeration(t *testing.T) {
	c := chain3()
	pi := markov.Uniform(3)
	r1 := grid.MustRegionOf(3, 0, 1)
	r2 := grid.MustRegionOf(3, 1, 2)
	p := MustNewPattern([]*grid.Region{r1, r2}, 1)
	em := func(t, o, s int) float64 {
		if o == s {
			return 0.8
		}
		return 0.1
	}
	// Algorithm 4 covers only in-window observations; cross-check against
	// the general enumerator restricted to the window by making the
	// emission outside the window constant 1.
	emWindow := func(t, o, s int) float64 {
		if t < 1 || t > 2 {
			return 1
		}
		return em(t, o, s)
	}
	fast, err := NaivePatternJoint(c, pi, p, []int{0, 1}, func(t, o, s int) float64 { return em(t, o, s) })
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NaiveJoint(c, pi, p.Expr(), []int{99, 0, 1}, func(t, o, s int) float64 {
		return emWindow(t, o, s)
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-slow) > 1e-12 {
		t.Fatalf("pattern joint %v vs general %v", fast, slow)
	}
}

func TestNaivePatternJointStartZero(t *testing.T) {
	c := chain3()
	pi := mat.Vector{0.5, 0.3, 0.2}
	r1 := grid.MustRegionOf(3, 0)
	p := MustNewPattern([]*grid.Region{r1}, 0)
	got, err := NaivePatternJoint(c, pi, p, []int{0}, func(t, o, s int) float64 {
		if o == s {
			return 0.9
		}
		return 0.05
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 0.9
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("joint = %v want %v", got, want)
	}
}

func TestNaivePatternJointErrors(t *testing.T) {
	c := chain3()
	p := MustNewPattern([]*grid.Region{grid.MustRegionOf(3, 0)}, 1)
	if _, err := NaivePatternJoint(c, markov.Uniform(2), p, []int{0}, uniformEmission(3)); err == nil {
		t.Error("mismatched distribution accepted")
	}
	if _, err := NaivePatternJoint(c, markov.Uniform(3), p, []int{0, 1}, uniformEmission(3)); err == nil {
		t.Error("wrong obs length accepted")
	}
	if _, err := NaivePatternJoint(c, markov.Uniform(3), p, []int{0}, nil); err == nil {
		t.Error("nil emission accepted")
	}
}

// Property: NaivePrior of a random small expression plus its negation is 1.
func TestNaivePriorComplementRandomProperty(t *testing.T) {
	c := chain3()
	pi := markov.Uniform(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 3, 3, 2)
		p1, err1 := NaivePrior(c, pi, e, 3)
		p2, err2 := NaivePrior(c, pi, Not(e), 3)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p1+p2-1) < 1e-10 && p1 >= -1e-12 && p1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomExpr builds a random expression over `horizon` timestamps and m
// states with the given depth.
func randomExpr(rng *rand.Rand, m, horizon, depth int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return Pred(rng.Intn(horizon), rng.Intn(m))
	}
	n := 1 + rng.Intn(3)
	kids := make([]*Expr, n)
	for i := range kids {
		kids[i] = randomExpr(rng, m, horizon, depth-1)
	}
	switch rng.Intn(3) {
	case 0:
		return And(kids...)
	case 1:
		return Or(kids...)
	default:
		return Not(kids[0])
	}
}
