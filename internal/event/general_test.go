package event

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"priste/internal/grid"
	"priste/internal/markov"
	"priste/internal/mat"
)

func TestGeneralPresenceValidation(t *testing.T) {
	if _, err := NewGeneralPresence(nil); err == nil {
		t.Error("empty map accepted")
	}
	r := grid.MustRegionOf(3, 0)
	if _, err := NewGeneralPresence(map[int]*grid.Region{-1: r}); err == nil {
		t.Error("negative timestamp accepted")
	}
	if _, err := NewGeneralPresence(map[int]*grid.Region{0: grid.NewRegion(3)}); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := NewGeneralPresence(map[int]*grid.Region{0: r, 1: grid.MustRegionOf(4, 0)}); err == nil {
		t.Error("state-space mismatch accepted")
	}
}

func TestGeneralPresenceSemantics(t *testing.T) {
	// Sensitive at {s0} at t=1 and {s2} at t=3 (different regions!).
	p, err := NewGeneralPresence(map[int]*grid.Region{
		1: grid.MustRegionOf(3, 0),
		3: grid.MustRegionOf(3, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s, e := p.Window(); s != 1 || e != 3 {
		t.Fatalf("window = %d..%d", s, e)
	}
	if !p.Sticky() {
		t.Error("general presence must be sticky")
	}
	if !p.Truth([]int{1, 0, 1, 1}) {
		t.Error("t=1 hit missed")
	}
	if !p.Truth([]int{1, 1, 1, 2}) {
		t.Error("t=3 hit missed")
	}
	if p.Truth([]int{0, 2, 0, 1}) {
		t.Error("wrong-region visits counted")
	}
	// Gap timestamp 2 carries no region.
	if !p.RegionAt(2).IsEmpty() {
		t.Error("gap region not empty")
	}
	if !strings.Contains(p.String(), "general") {
		t.Errorf("String = %q", p.String())
	}
	e := p.Expr()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		traj := []int{rng.Intn(3), rng.Intn(3), rng.Intn(3), rng.Intn(3)}
		if e.Eval(traj) != p.Truth(traj) {
			t.Fatalf("expr mismatch on %v", traj)
		}
	}
}

func TestCompilePresenceShapes(t *testing.T) {
	// Fig. 1 (d): (u0=s0) ∨ (u1=s0).
	ev, err := CompileWithStates(Or(Pred(0, 0), Pred(1, 0)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Sticky() {
		t.Fatal("OR must compile to a sticky event")
	}
	if !ev.Truth([]int{0, 1}) || !ev.Truth([]int{1, 0}) || ev.Truth([]int{1, 1}) {
		t.Fatal("compiled semantics wrong")
	}
	// Fig. 1 (f): nested ORs across timestamps and states.
	ev2, err := CompileWithStates(Or(Or(Pred(0, 0), Pred(0, 1)), Or(Pred(1, 0), Pred(1, 1))), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ev2.Truth([]int{2, 1}) || ev2.Truth([]int{2, 2}) {
		t.Fatal("nested OR semantics wrong")
	}
}

func TestCompilePatternShapes(t *testing.T) {
	// Fig. 1 (e): ((u0=s0)∨(u0=s1)) ∧ ((u1=s0)∨(u1=s1)).
	ev, err := CompileWithStates(And(Or(Pred(0, 0), Pred(0, 1)), Or(Pred(1, 0), Pred(1, 1))), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Sticky() {
		t.Fatal("AND must compile to a non-sticky event")
	}
	if !ev.Truth([]int{0, 1}) || ev.Truth([]int{0, 2}) || ev.Truth([]int{2, 0}) {
		t.Fatal("pattern semantics wrong")
	}
	// Fig. 1 (c): a single trajectory (u0=s0) ∧ (u1=s0).
	ev2, err := CompileWithStates(And(Pred(0, 0), Pred(1, 0)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ev2.Truth([]int{0, 0}) || ev2.Truth([]int{0, 1}) {
		t.Fatal("trajectory semantics wrong")
	}
	// Sparse conjunction: constraints at t=0 and t=2 only.
	ev3, err := CompileWithStates(And(Pred(0, 1), Pred(2, 1)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ev3.Truth([]int{1, 0, 1}) || ev3.Truth([]int{1, 1, 0}) {
		t.Fatal("sparse conjunction semantics wrong")
	}
}

func TestCompileRejections(t *testing.T) {
	cases := map[string]*Expr{
		"nil":                      nil,
		"negation":                 Not(Pred(0, 0)),
		"mixed conjunct":           And(Or(Pred(0, 0), Pred(1, 0)), Pred(2, 0)),
		"duplicate timestamp":      And(Pred(1, 0), Pred(1, 2)),
		"or-of-and":                Or(And(Pred(0, 0), Pred(1, 0)), Pred(2, 0)),
		"negation inside conjunct": And(Pred(0, 0), Not(Pred(1, 0))),
	}
	for name, e := range cases {
		if _, err := Compile(e); err == nil {
			t.Errorf("%s: expected compile error", name)
		}
	}
}

func TestCompileWithStates(t *testing.T) {
	ev, err := CompileWithStates(Or(Pred(0, 1), Pred(2, 0)), 5)
	if err != nil {
		t.Fatal(err)
	}
	if ev.States() != 5 {
		t.Fatalf("states = %d", ev.States())
	}
	// Pattern resize too.
	ev2, err := CompileWithStates(And(Pred(0, 1), Pred(1, 2)), 7)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.States() != 7 {
		t.Fatalf("pattern states = %d", ev2.States())
	}
	if _, err := CompileWithStates(Or(Pred(0, 9)), 3); err == nil {
		t.Error("state beyond map accepted")
	}
	if _, err := CompileWithStates(Pred(0, 0), 0); err == nil {
		t.Error("m=0 accepted")
	}
}

// Property: a compiled event's Truth agrees with the source expression on
// random trajectories, for both supported shapes.
func TestCompileSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		horizon := 2 + rng.Intn(3)
		m := 2 + rng.Intn(3)
		var e *Expr
		if rng.Intn(2) == 0 {
			// Random disjunction.
			n := 1 + rng.Intn(5)
			kids := make([]*Expr, n)
			for i := range kids {
				kids[i] = Pred(rng.Intn(horizon), rng.Intn(m))
			}
			e = Or(kids...)
		} else {
			// Random per-timestamp conjunction over distinct timestamps.
			perm := rng.Perm(horizon)
			n := 1 + rng.Intn(horizon)
			var kids []*Expr
			for _, t := range perm[:n] {
				w := 1 + rng.Intn(m)
				var disj []*Expr
				for k := 0; k < w; k++ {
					disj = append(disj, Pred(t, rng.Intn(m)))
				}
				kids = append(kids, Or(disj...))
			}
			e = And(kids...)
		}
		ev, err := CompileWithStates(e, m)
		if err != nil {
			return false
		}
		for trial := 0; trial < 40; trial++ {
			traj := make([]int, horizon)
			for i := range traj {
				traj[i] = rng.Intn(m)
			}
			if ev.Truth(traj) != e.Eval(traj) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: compiled events produce the same prior as the naive evaluation
// of their source expression (closing the loop with the quantifier's
// event interface).
func TestCompilePriorConsistencyProperty(t *testing.T) {
	c := markov.MustNewChain(mat.FromRows([][]float64{
		{0.1, 0.2, 0.7},
		{0.4, 0.1, 0.5},
		{0, 0.1, 0.9},
	}))
	pi := markov.Uniform(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := Or(Pred(rng.Intn(3), rng.Intn(3)), Pred(rng.Intn(3), rng.Intn(3)), Pred(rng.Intn(3), rng.Intn(3)))
		ev, err := CompileWithStates(e, 3)
		if err != nil {
			return false
		}
		_, end := ev.Window()
		p1, err := NaivePrior(c, pi, e, end+1)
		if err != nil {
			return false
		}
		p2, err := NaivePrior(c, pi, ev.Expr(), end+1)
		if err != nil {
			return false
		}
		return math.Abs(p1-p2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
