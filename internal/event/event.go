// Package event defines spatiotemporal events (Definition II.1 of the
// paper): Boolean expressions over (location, time) predicates u_t = s_i,
// together with the two representative event families the paper focuses on —
// PRESENCE (Definition II.2) and PATTERN (Definition II.3) — and the naive
// exponential-time evaluators of Appendix B that serve as the runtime
// baseline in Fig. 14.
//
// Timestamps are 0-based throughout this code base; the paper's 1-based
// notation PRESENCE(S={1:10}, T={4:8}) corresponds to states 0..9 and
// timestamps 3..7 here.
package event

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates Boolean expression node kinds.
type Op uint8

const (
	// OpPred is a leaf predicate u_t = s.
	OpPred Op = iota
	// OpAnd is conjunction over children.
	OpAnd
	// OpOr is disjunction over children.
	OpOr
	// OpNot is negation of a single child.
	OpNot
)

// Predicate is the atom u_t = s: "the user is at state s at timestamp t".
type Predicate struct {
	T     int // 0-based timestamp
	State int
}

// Expr is a node of a Boolean expression over predicates.
type Expr struct {
	Op   Op
	Pred Predicate // valid when Op == OpPred
	Kids []*Expr   // valid for OpAnd/OpOr (≥1 child) and OpNot (exactly 1)
}

// Pred returns the leaf expression u_t = s.
func Pred(t, state int) *Expr {
	return &Expr{Op: OpPred, Pred: Predicate{T: t, State: state}}
}

// And returns the conjunction of the given expressions.
func And(kids ...*Expr) *Expr { return nary(OpAnd, kids) }

// Or returns the disjunction of the given expressions.
func Or(kids ...*Expr) *Expr { return nary(OpOr, kids) }

// Not returns the negation of x.
func Not(x *Expr) *Expr {
	if x == nil {
		panic("event: Not(nil)")
	}
	return &Expr{Op: OpNot, Kids: []*Expr{x}}
}

func nary(op Op, kids []*Expr) *Expr {
	if len(kids) == 0 {
		panic("event: And/Or need at least one child")
	}
	for _, k := range kids {
		if k == nil {
			panic("event: nil child expression")
		}
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return &Expr{Op: op, Kids: kids}
}

// Eval returns the truth value of the expression on a full trajectory,
// where traj[t] is the user's state at timestamp t. It panics if the
// expression references a timestamp beyond the trajectory.
func (e *Expr) Eval(traj []int) bool {
	switch e.Op {
	case OpPred:
		if e.Pred.T < 0 || e.Pred.T >= len(traj) {
			panic(fmt.Sprintf("event: predicate references t=%d, trajectory has %d steps", e.Pred.T, len(traj)))
		}
		return traj[e.Pred.T] == e.Pred.State
	case OpAnd:
		for _, k := range e.Kids {
			if !k.Eval(traj) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range e.Kids {
			if k.Eval(traj) {
				return true
			}
		}
		return false
	case OpNot:
		return !e.Kids[0].Eval(traj)
	default:
		panic(fmt.Sprintf("event: unknown op %d", e.Op))
	}
}

// MaxTime returns the largest timestamp referenced by any predicate.
func (e *Expr) MaxTime() int {
	max := 0
	e.walk(func(p Predicate) {
		if p.T > max {
			max = p.T
		}
	})
	return max
}

// MinTime returns the smallest timestamp referenced by any predicate.
func (e *Expr) MinTime() int {
	min := int(^uint(0) >> 1)
	e.walk(func(p Predicate) {
		if p.T < min {
			min = p.T
		}
	})
	return min
}

// Predicates returns all leaf predicates in deterministic order.
func (e *Expr) Predicates() []Predicate {
	var out []Predicate
	e.walk(func(p Predicate) { out = append(out, p) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].State < out[j].State
	})
	return out
}

// NumPredicates returns the number of leaf predicates (with multiplicity) —
// the complexity parameter of §I's discussion.
func (e *Expr) NumPredicates() int {
	n := 0
	e.walk(func(Predicate) { n++ })
	return n
}

func (e *Expr) walk(f func(Predicate)) {
	if e.Op == OpPred {
		f(e.Pred)
		return
	}
	for _, k := range e.Kids {
		k.walk(f)
	}
}

// String renders the expression with the paper's notation, e.g.
// "((u3=s1) ∨ (u3=s2)) ∧ (u4=s1)".
func (e *Expr) String() string {
	switch e.Op {
	case OpPred:
		return fmt.Sprintf("(u%d=s%d)", e.Pred.T, e.Pred.State)
	case OpNot:
		return "¬" + e.Kids[0].String()
	case OpAnd, OpOr:
		sep := " ∧ "
		if e.Op == OpOr {
			sep = " ∨ "
		}
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, sep) + ")"
	default:
		return "?"
	}
}
