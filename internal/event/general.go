package event

import (
	"fmt"
	"sort"

	"priste/internal/grid"
)

// General events: PRESENCE/PATTERN with a possibly different region at
// every timestamp. They are the closure of what the two-possible-world
// quantifier can represent — sticky dynamics (an OR of predicates) or
// sequential dynamics (an AND over timestamps of ORs over states) — and
// the compilation target for arbitrary Boolean expressions (Compile).

// GeneralPresence is true iff the user is inside Regions[t] at some
// timestamp t with a non-empty region. Distinct timestamps may have
// distinct regions, generalising both Presence and SparsePresence.
type GeneralPresence struct {
	regions map[int]*grid.Region
	times   []int
	m       int
	empty   *grid.Region
}

// NewGeneralPresence validates and returns the event. regions maps
// timestamps to the region sensitive at that timestamp.
func NewGeneralPresence(regions map[int]*grid.Region) (*GeneralPresence, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("event: general presence needs at least one timestamp")
	}
	m := -1
	var times []int
	for t, r := range regions {
		if t < 0 {
			return nil, fmt.Errorf("event: negative timestamp %d", t)
		}
		if r == nil || r.IsEmpty() {
			return nil, fmt.Errorf("event: empty region at timestamp %d", t)
		}
		if m == -1 {
			m = r.Len()
		} else if r.Len() != m {
			return nil, fmt.Errorf("event: region at t=%d has %d states, want %d", t, r.Len(), m)
		}
		times = append(times, t)
	}
	sort.Ints(times)
	cp := make(map[int]*grid.Region, len(regions))
	for t, r := range regions {
		cp[t] = r
	}
	return &GeneralPresence{regions: cp, times: times, m: m, empty: grid.NewRegion(m)}, nil
}

// States returns the state-space size m.
func (p *GeneralPresence) States() int { return p.m }

// Window returns the inclusive [min, max] constrained timestamps.
func (p *GeneralPresence) Window() (start, end int) {
	return p.times[0], p.times[len(p.times)-1]
}

// RegionAt returns the sensitive region at t, or the empty region at
// in-window gaps.
func (p *GeneralPresence) RegionAt(t int) *grid.Region {
	start, end := p.Window()
	if t < start || t > end {
		panic(fmt.Sprintf("event: RegionAt(%d) outside window [%d,%d]", t, start, end))
	}
	if r, ok := p.regions[t]; ok {
		return r
	}
	return p.empty
}

// Sticky reports OR semantics.
func (p *GeneralPresence) Sticky() bool { return true }

// Truth evaluates the event on a full trajectory.
func (p *GeneralPresence) Truth(traj []int) bool {
	_, end := p.Window()
	if len(traj) <= end {
		panic(fmt.Sprintf("event: trajectory of length %d does not cover window end %d", len(traj), end))
	}
	for _, t := range p.times {
		if p.regions[t].Contains(traj[t]) {
			return true
		}
	}
	return false
}

// Expr expands into the disjunction of all (t, s) predicates.
func (p *GeneralPresence) Expr() *Expr {
	var kids []*Expr
	for _, t := range p.times {
		for _, s := range p.regions[t].States() {
			kids = append(kids, Pred(t, s))
		}
	}
	return Or(kids...)
}

// String renders the event.
func (p *GeneralPresence) String() string {
	return fmt.Sprintf("PRESENCE(general, T=%v)", p.times)
}

// NewGeneralPattern returns the sequential counterpart: true iff the user
// is inside regions[t] at *every* constrained timestamp. It is exactly
// SparsePattern and shares its implementation.
func NewGeneralPattern(regions map[int]*grid.Region) (*SparsePattern, error) {
	times := make([]int, 0, len(regions))
	for t := range regions {
		times = append(times, t)
	}
	sort.Ints(times)
	rs := make([]*grid.Region, len(times))
	for i, t := range times {
		rs[i] = regions[t]
	}
	return NewSparsePattern(times, rs)
}

var _ Event = (*GeneralPresence)(nil)

// Compile translates a Boolean expression over (location, time) predicates
// (Definition II.1) into an Event the two-possible-world quantifier can
// protect. Two shapes are supported, covering all six Fig. 1 cases:
//
//   - a disjunction (arbitrarily nested OR) of predicates — compiled to a
//     GeneralPresence ("the user hits any listed (t, s) pair");
//   - a conjunction of per-timestamp disjunctions — compiled to a
//     GeneralPattern, provided each conjunct's predicates share one
//     timestamp and no timestamp appears in two conjuncts.
//
// Expressions outside this class (negations, conjunctions of predicates at
// the same timestamp that are unsatisfiable, cross-timestamp ORs inside a
// conjunct) return an error describing the obstacle; for those the naive
// evaluators of Appendix B remain available.
func Compile(e *Expr) (Event, error) {
	if e == nil {
		return nil, fmt.Errorf("event: nil expression")
	}
	if preds, ok := flattenOr(e); ok {
		regions, err := groupByTime(preds)
		if err != nil {
			return nil, err
		}
		return NewGeneralPresence(regions)
	}
	if e.Op == OpAnd {
		regions := make(map[int]*grid.Region)
		for _, kid := range e.Kids {
			preds, ok := flattenOr(kid)
			if !ok {
				return nil, fmt.Errorf("event: conjunct %v is not a disjunction of predicates", kid)
			}
			t := preds[0].T
			var states []int
			maxState := 0
			for _, p := range preds {
				if p.T != t {
					return nil, fmt.Errorf("event: conjunct %v mixes timestamps %d and %d", kid, t, p.T)
				}
				states = append(states, p.State)
				if p.State > maxState {
					maxState = p.State
				}
			}
			if _, dup := regions[t]; dup {
				return nil, fmt.Errorf("event: two conjuncts constrain timestamp %d (intersect them first)", t)
			}
			r, err := grid.RegionOf(maxState+1, states...)
			if err != nil {
				return nil, err
			}
			regions[t] = r
		}
		if err := padRegions(regions); err != nil {
			return nil, err
		}
		return NewGeneralPattern(regions)
	}
	return nil, fmt.Errorf("event: expression %v is neither a disjunction of predicates nor a conjunction of per-timestamp disjunctions", e)
}

// CompileWithStates is Compile with an explicit state-space size (Compile
// infers the minimal size from the largest referenced state, which is
// usually not the map size).
func CompileWithStates(e *Expr, m int) (Event, error) {
	if m <= 0 {
		return nil, fmt.Errorf("event: m must be positive")
	}
	ev, err := Compile(e)
	if err != nil {
		return nil, err
	}
	return resizeEvent(ev, m)
}

// flattenOr collects the predicate leaves of a pure disjunction tree.
func flattenOr(e *Expr) ([]Predicate, bool) {
	switch e.Op {
	case OpPred:
		return []Predicate{e.Pred}, true
	case OpOr:
		var out []Predicate
		for _, kid := range e.Kids {
			ps, ok := flattenOr(kid)
			if !ok {
				return nil, false
			}
			out = append(out, ps...)
		}
		return out, true
	default:
		return nil, false
	}
}

// groupByTime buckets predicates into per-timestamp regions sized by the
// largest referenced state.
func groupByTime(preds []Predicate) (map[int]*grid.Region, error) {
	maxState := 0
	for _, p := range preds {
		if p.State < 0 {
			return nil, fmt.Errorf("event: negative state %d", p.State)
		}
		if p.State > maxState {
			maxState = p.State
		}
	}
	m := maxState + 1
	regions := make(map[int]*grid.Region)
	for _, p := range preds {
		r, ok := regions[p.T]
		if !ok {
			r = grid.NewRegion(m)
			regions[p.T] = r
		}
		r.Add(p.State)
	}
	return regions, nil
}

// padRegions rescales all regions in the map to the largest state space
// among them (Compile infers sizes per conjunct).
func padRegions(regions map[int]*grid.Region) error {
	m := 0
	for _, r := range regions {
		if r.Len() > m {
			m = r.Len()
		}
	}
	for t, r := range regions {
		if r.Len() == m {
			continue
		}
		grown, err := grid.RegionOf(m, r.States()...)
		if err != nil {
			return err
		}
		regions[t] = grown
	}
	return nil
}

// resizeEvent rebuilds a compiled event over a larger state space.
func resizeEvent(ev Event, m int) (Event, error) {
	if ev.States() > m {
		return nil, fmt.Errorf("event: expression references state %d beyond map size %d", ev.States()-1, m)
	}
	if ev.States() == m {
		return ev, nil
	}
	switch e := ev.(type) {
	case *GeneralPresence:
		regions := make(map[int]*grid.Region, len(e.times))
		for _, t := range e.times {
			r, err := grid.RegionOf(m, e.regions[t].States()...)
			if err != nil {
				return nil, err
			}
			regions[t] = r
		}
		return NewGeneralPresence(regions)
	case *SparsePattern:
		regions := make(map[int]*grid.Region, len(e.times))
		for _, t := range e.times {
			r, err := grid.RegionOf(m, e.regions[t].States()...)
			if err != nil {
				return nil, err
			}
			regions[t] = r
		}
		return NewGeneralPattern(regions)
	default:
		return nil, fmt.Errorf("event: cannot resize %T", ev)
	}
}
