package event

import (
	"fmt"

	"priste/internal/grid"
)

// Pattern is the PATTERN event of Definition II.3: the user appears in
// Regions[0], Regions[1], … sequentially at timestamps Start, Start+1, ….
// It generalises a single sensitive trajectory (all regions singletons).
type Pattern struct {
	Regions []*grid.Region
	Start   int
}

// NewPattern validates and returns a PATTERN event.
func NewPattern(regions []*grid.Region, start int) (*Pattern, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("event: pattern needs at least one region")
	}
	if start < 0 {
		return nil, fmt.Errorf("event: pattern start %d negative", start)
	}
	m := regions[0].Len()
	for i, r := range regions {
		if r == nil || r.IsEmpty() {
			return nil, fmt.Errorf("event: pattern region %d is empty", i)
		}
		if r.Len() != m {
			return nil, fmt.Errorf("event: pattern region %d has %d states, want %d", i, r.Len(), m)
		}
	}
	return &Pattern{Regions: cloneRegions(regions), Start: start}, nil
}

func cloneRegions(rs []*grid.Region) []*grid.Region {
	out := make([]*grid.Region, len(rs))
	copy(out, rs)
	return out
}

// MustNewPattern is NewPattern that panics on error.
func MustNewPattern(regions []*grid.Region, start int) *Pattern {
	p, err := NewPattern(regions, start)
	if err != nil {
		panic(err)
	}
	return p
}

// States returns the size m of the state space.
func (p *Pattern) States() int { return p.Regions[0].Len() }

// Window returns the inclusive event window [Start, Start+len(Regions)-1].
func (p *Pattern) Window() (start, end int) {
	return p.Start, p.Start + len(p.Regions) - 1
}

// RegionAt returns the region that must contain the user at timestamp t.
func (p *Pattern) RegionAt(t int) *grid.Region {
	start, end := p.Window()
	if t < start || t > end {
		panic(fmt.Sprintf("event: RegionAt(%d) outside window [%d,%d]", t, start, end))
	}
	return p.Regions[t-start]
}

// Sticky reports whether the event, once entered, remains true regardless
// of later movement. PATTERN is not sticky: the trajectory must keep
// satisfying every region in sequence.
func (p *Pattern) Sticky() bool { return false }

// Truth evaluates the event on a full trajectory.
func (p *Pattern) Truth(traj []int) bool {
	start, end := p.Window()
	if len(traj) <= end {
		panic(fmt.Sprintf("event: trajectory of length %d does not cover window end %d", len(traj), end))
	}
	for t := start; t <= end; t++ {
		if !p.Regions[t-start].Contains(traj[t]) {
			return false
		}
	}
	return true
}

// Expr expands the event into
// ⋀_{t} ⋁_{s∈Regions[t-Start]} (u_t = s), as in Example II.2.
func (p *Pattern) Expr() *Expr {
	start, end := p.Window()
	var conj []*Expr
	for t := start; t <= end; t++ {
		var disj []*Expr
		for _, s := range p.Regions[t-start].States() {
			disj = append(disj, Pred(t, s))
		}
		conj = append(conj, Or(disj...))
	}
	return And(conj...)
}

// Width returns the maximum region size across the window.
func (p *Pattern) Width() int {
	w := 0
	for _, r := range p.Regions {
		if c := r.Count(); c > w {
			w = c
		}
	}
	return w
}

// Length returns the number of timestamps in the window.
func (p *Pattern) Length() int { return len(p.Regions) }

// String renders the event in the paper's notation.
func (p *Pattern) String() string {
	start, end := p.Window()
	return fmt.Sprintf("PATTERN(len=%d, width=%d, T={%d:%d})", p.Length(), p.Width(), start, end)
}

// Event is the common interface of PRESENCE and PATTERN consumed by the
// two-possible-world quantifier. Start/End are the inclusive 0-based event
// window; RegionAt gives the region relevant at an in-window timestamp;
// Sticky distinguishes the "once true, always true" dynamics of PRESENCE
// from the sequential constraint of PATTERN.
type Event interface {
	States() int
	Window() (start, end int)
	RegionAt(t int) *grid.Region
	Sticky() bool
	Truth(traj []int) bool
	Expr() *Expr
	String() string
}

var (
	_ Event = (*Presence)(nil)
	_ Event = (*Pattern)(nil)
)

// SingleLocation returns the event "u_t = s" as a PRESENCE with a singleton
// region (Table II, row 1).
func SingleLocation(m, t, s int) (*Presence, error) {
	r, err := grid.RegionOf(m, s)
	if err != nil {
		return nil, err
	}
	return NewPresence(r, t, t)
}

// SingleTrajectory returns the event "u_start = path[0] ∧ u_{start+1} =
// path[1] ∧ …" as a PATTERN of singleton regions (Table II, row 4).
func SingleTrajectory(m, start int, path []int) (*Pattern, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("event: empty trajectory")
	}
	regions := make([]*grid.Region, len(path))
	for i, s := range path {
		r, err := grid.RegionOf(m, s)
		if err != nil {
			return nil, err
		}
		regions[i] = r
	}
	return NewPattern(regions, start)
}
