package event

import (
	"fmt"

	"priste/internal/grid"
)

// Presence is the PRESENCE event of Definition II.2: the user appears in
// Region at some timestamp in [Start, End] (inclusive, 0-based). It
// generalises a single sensitive location (|Region| = 1, Start = End).
type Presence struct {
	Region     *grid.Region
	Start, End int
}

// NewPresence validates and returns a PRESENCE event.
func NewPresence(region *grid.Region, start, end int) (*Presence, error) {
	if region == nil || region.IsEmpty() {
		return nil, fmt.Errorf("event: presence region is empty")
	}
	if start < 0 || end < start {
		return nil, fmt.Errorf("event: presence window [%d,%d] invalid", start, end)
	}
	return &Presence{Region: region, Start: start, End: end}, nil
}

// MustNewPresence is NewPresence that panics on error.
func MustNewPresence(region *grid.Region, start, end int) *Presence {
	p, err := NewPresence(region, start, end)
	if err != nil {
		panic(err)
	}
	return p
}

// States returns the size m of the state space.
func (p *Presence) States() int { return p.Region.Len() }

// Window returns the inclusive event window.
func (p *Presence) Window() (start, end int) { return p.Start, p.End }

// RegionAt returns the region constraining timestamp t; for PRESENCE it is
// the same region at every in-window timestamp.
func (p *Presence) RegionAt(t int) *grid.Region {
	if t < p.Start || t > p.End {
		panic(fmt.Sprintf("event: RegionAt(%d) outside window [%d,%d]", t, p.Start, p.End))
	}
	return p.Region
}

// Sticky reports whether the event, once true, remains true (PRESENCE
// semantics — the OR of in-window predicates).
func (p *Presence) Sticky() bool { return true }

// Truth evaluates the event on a full trajectory.
func (p *Presence) Truth(traj []int) bool {
	if len(traj) <= p.End {
		panic(fmt.Sprintf("event: trajectory of length %d does not cover window end %d", len(traj), p.End))
	}
	for t := p.Start; t <= p.End; t++ {
		if p.Region.Contains(traj[t]) {
			return true
		}
	}
	return false
}

// Expr expands the event into its Boolean expression
// ⋁_{t∈[Start,End]} ⋁_{s∈Region} (u_t = s), as in Example II.1.
func (p *Presence) Expr() *Expr {
	var kids []*Expr
	for t := p.Start; t <= p.End; t++ {
		for _, s := range p.Region.States() {
			kids = append(kids, Pred(t, s))
		}
	}
	return Or(kids...)
}

// Width returns the number of states in the region (the paper's "event
// width" runtime parameter).
func (p *Presence) Width() int { return p.Region.Count() }

// Length returns the number of timestamps in the window (the paper's
// "event length").
func (p *Presence) Length() int { return p.End - p.Start + 1 }

// String renders the event in the paper's notation.
func (p *Presence) String() string {
	return fmt.Sprintf("PRESENCE(|S|=%d, T={%d:%d})", p.Region.Count(), p.Start, p.End)
}
