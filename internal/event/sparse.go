package event

import (
	"fmt"
	"sort"

	"priste/internal/grid"
)

// The paper notes (§II-B) that PRESENCE and PATTERN "include the cases
// when the time T is not consecutive" but, for simplicity, evaluates only
// consecutive windows. This file implements the non-consecutive variants.
// They plug into the two-possible-world quantifier unchanged: a PRESENCE
// gap timestamp carries an empty region (no way to enter the true world),
// and a PATTERN gap timestamp carries the full map (no constraint, so the
// true world persists).

// SparsePresence is a PRESENCE event over an arbitrary set of timestamps:
// true iff the user is inside Region at at least one listed timestamp.
type SparsePresence struct {
	Region *grid.Region
	times  []int // sorted, unique
	inTime map[int]bool
	empty  *grid.Region
}

// NewSparsePresence validates and returns the event. times must be
// non-empty; duplicates are removed.
func NewSparsePresence(region *grid.Region, times []int) (*SparsePresence, error) {
	if region == nil || region.IsEmpty() {
		return nil, fmt.Errorf("event: sparse presence region is empty")
	}
	ts, err := normalizeTimes(times)
	if err != nil {
		return nil, err
	}
	p := &SparsePresence{Region: region, times: ts, inTime: timeSet(ts), empty: grid.NewRegion(region.Len())}
	return p, nil
}

// States returns the state-space size m.
func (p *SparsePresence) States() int { return p.Region.Len() }

// Window returns the inclusive [min, max] of the timestamp set.
func (p *SparsePresence) Window() (start, end int) {
	return p.times[0], p.times[len(p.times)-1]
}

// Times returns the sorted timestamps (shared storage; do not mutate).
func (p *SparsePresence) Times() []int { return p.times }

// RegionAt returns the region at listed timestamps and the empty region at
// in-window gaps (which the quantifier's PRESENCE dynamics treat as "no
// entry possible here").
func (p *SparsePresence) RegionAt(t int) *grid.Region {
	start, end := p.Window()
	if t < start || t > end {
		panic(fmt.Sprintf("event: RegionAt(%d) outside window [%d,%d]", t, start, end))
	}
	if p.inTime[t] {
		return p.Region
	}
	return p.empty
}

// Sticky reports PRESENCE semantics (once true, always true).
func (p *SparsePresence) Sticky() bool { return true }

// Truth evaluates the event on a full trajectory.
func (p *SparsePresence) Truth(traj []int) bool {
	_, end := p.Window()
	if len(traj) <= end {
		panic(fmt.Sprintf("event: trajectory of length %d does not cover window end %d", len(traj), end))
	}
	for _, t := range p.times {
		if p.Region.Contains(traj[t]) {
			return true
		}
	}
	return false
}

// Expr expands into ⋁_{t∈times} ⋁_{s∈Region} (u_t = s).
func (p *SparsePresence) Expr() *Expr {
	var kids []*Expr
	for _, t := range p.times {
		for _, s := range p.Region.States() {
			kids = append(kids, Pred(t, s))
		}
	}
	return Or(kids...)
}

// String renders the event.
func (p *SparsePresence) String() string {
	return fmt.Sprintf("PRESENCE(|S|=%d, T=%v)", p.Region.Count(), p.times)
}

// SparsePattern is a PATTERN event constraining an arbitrary set of
// timestamps: true iff the user is inside Regions[k] at Times[k] for every
// k. Timestamps between constrained ones are unconstrained.
type SparsePattern struct {
	times   []int
	regions map[int]*grid.Region
	full    *grid.Region
	m       int
}

// NewSparsePattern validates and returns the event. times and regions are
// parallel; duplicate timestamps are rejected.
func NewSparsePattern(times []int, regions []*grid.Region) (*SparsePattern, error) {
	if len(times) == 0 || len(times) != len(regions) {
		return nil, fmt.Errorf("event: sparse pattern needs parallel non-empty times/regions, got %d/%d",
			len(times), len(regions))
	}
	m := regions[0].Len()
	byTime := make(map[int]*grid.Region, len(times))
	for i, t := range times {
		if t < 0 {
			return nil, fmt.Errorf("event: negative timestamp %d", t)
		}
		r := regions[i]
		if r == nil || r.IsEmpty() {
			return nil, fmt.Errorf("event: sparse pattern region %d is empty", i)
		}
		if r.Len() != m {
			return nil, fmt.Errorf("event: sparse pattern region %d has %d states, want %d", i, r.Len(), m)
		}
		if _, dup := byTime[t]; dup {
			return nil, fmt.Errorf("event: duplicate timestamp %d", t)
		}
		byTime[t] = r
	}
	ts := make([]int, 0, len(byTime))
	for t := range byTime {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	full := grid.NewRegion(m)
	for s := 0; s < m; s++ {
		full.Add(s)
	}
	return &SparsePattern{times: ts, regions: byTime, full: full, m: m}, nil
}

// States returns the state-space size m.
func (p *SparsePattern) States() int { return p.m }

// Window returns the inclusive [min, max] of the constrained timestamps.
func (p *SparsePattern) Window() (start, end int) {
	return p.times[0], p.times[len(p.times)-1]
}

// Times returns the sorted constrained timestamps.
func (p *SparsePattern) Times() []int { return p.times }

// RegionAt returns the constraining region, or the full map at
// unconstrained in-window timestamps (the quantifier's PATTERN dynamics
// then keep the true world intact there).
func (p *SparsePattern) RegionAt(t int) *grid.Region {
	start, end := p.Window()
	if t < start || t > end {
		panic(fmt.Sprintf("event: RegionAt(%d) outside window [%d,%d]", t, start, end))
	}
	if r, ok := p.regions[t]; ok {
		return r
	}
	return p.full
}

// Sticky reports PATTERN semantics (constraints must keep holding).
func (p *SparsePattern) Sticky() bool { return false }

// Truth evaluates the event on a full trajectory.
func (p *SparsePattern) Truth(traj []int) bool {
	_, end := p.Window()
	if len(traj) <= end {
		panic(fmt.Sprintf("event: trajectory of length %d does not cover window end %d", len(traj), end))
	}
	for _, t := range p.times {
		if !p.regions[t].Contains(traj[t]) {
			return false
		}
	}
	return true
}

// Expr expands into ⋀_{t∈times} ⋁_{s∈Regions[t]} (u_t = s).
func (p *SparsePattern) Expr() *Expr {
	var conj []*Expr
	for _, t := range p.times {
		var disj []*Expr
		for _, s := range p.regions[t].States() {
			disj = append(disj, Pred(t, s))
		}
		conj = append(conj, Or(disj...))
	}
	return And(conj...)
}

// String renders the event.
func (p *SparsePattern) String() string {
	return fmt.Sprintf("PATTERN(sparse, T=%v)", p.times)
}

var (
	_ Event = (*SparsePresence)(nil)
	_ Event = (*SparsePattern)(nil)
)

func normalizeTimes(times []int) ([]int, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("event: empty timestamp set")
	}
	seen := make(map[int]bool, len(times))
	var ts []int
	for _, t := range times {
		if t < 0 {
			return nil, fmt.Errorf("event: negative timestamp %d", t)
		}
		if !seen[t] {
			seen[t] = true
			ts = append(ts, t)
		}
	}
	sort.Ints(ts)
	return ts, nil
}

func timeSet(ts []int) map[int]bool {
	m := make(map[int]bool, len(ts))
	for _, t := range ts {
		m[t] = true
	}
	return m
}
