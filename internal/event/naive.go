package event

import (
	"fmt"

	"priste/internal/markov"
	"priste/internal/mat"
)

// This file implements the naive exponential-time computations of
// Appendix B. They exist for two reasons: as the ground truth the efficient
// two-possible-world method is validated against in tests, and as the
// "baseline" whose runtime Fig. 14 compares against PriSTE.

// NaivePrior computes Pr(EVENT) by enumerating every trajectory over
// timestamps 0..horizon-1 and summing the probabilities of those on which
// expr evaluates true (Appendix B.1). Complexity O(m^horizon) — use only
// for small instances.
func NaivePrior(c *markov.Chain, pi mat.Vector, expr *Expr, horizon int) (float64, error) {
	if err := checkNaiveArgs(c, pi, expr, horizon); err != nil {
		return 0, err
	}
	var total float64
	forEachTrajectory(c, pi, horizon, func(traj []int, p float64) {
		if expr.Eval(traj) {
			total += p
		}
	})
	return total, nil
}

// NaiveJoint computes Pr(EVENT, o_0..o_{len(obs)-1}) by enumerating every
// hidden trajectory over timestamps 0..horizon-1, weighting each by the
// emission likelihood of the observed prefix. emission(t, obs, state) must
// return Pr(o_t = obs | u_t = state). horizon must be ≥ len(obs) and large
// enough to cover the expression.
func NaiveJoint(c *markov.Chain, pi mat.Vector, expr *Expr, obs []int,
	emission func(t, obs, state int) float64, horizon int) (float64, error) {
	if err := checkNaiveArgs(c, pi, expr, horizon); err != nil {
		return 0, err
	}
	if emission == nil {
		return 0, fmt.Errorf("event: nil emission function")
	}
	if len(obs) > horizon {
		return 0, fmt.Errorf("event: %d observations exceed horizon %d", len(obs), horizon)
	}
	var total float64
	forEachTrajectory(c, pi, horizon, func(traj []int, p float64) {
		if !expr.Eval(traj) {
			return
		}
		w := p
		for t, o := range obs {
			w *= emission(t, o, traj[t])
			if w == 0 {
				return
			}
		}
		total += w
	})
	return total, nil
}

// NaivePatternJoint is Algorithm 4 of Appendix B: it enumerates only the
// trajectories *inside* the pattern's regions (width^length of them, rather
// than m^horizon) and returns Pr(PATTERN, o_start..o_end) given the
// distribution at the timestamp immediately before the window. pBefore is
// the state distribution at timestamp start-1 (or the initial distribution
// if start == 0, in which case the first region constraint applies to it
// directly). obs must cover timestamps start..end of the window.
func NaivePatternJoint(c *markov.Chain, pBefore mat.Vector, p *Pattern,
	obs []int, emission func(t, obs, state int) float64) (float64, error) {
	if c.States() != len(pBefore) {
		return 0, fmt.Errorf("event: distribution length %d != states %d", len(pBefore), c.States())
	}
	if p.States() != c.States() {
		return 0, fmt.Errorf("event: pattern over %d states, chain has %d", p.States(), c.States())
	}
	start, end := p.Window()
	if len(obs) != end-start+1 {
		return 0, fmt.Errorf("event: need %d observations covering the window, got %d", end-start+1, len(obs))
	}
	if emission == nil {
		return 0, fmt.Errorf("event: nil emission function")
	}
	// Enumerate region trajectories depth-first, carrying the joint weight.
	var total float64
	states := make([]int, len(p.Regions))
	var rec func(idx int, w float64)
	rec = func(idx int, w float64) {
		if idx == len(p.Regions) {
			total += w
			return
		}
		t := start + idx
		for _, s := range p.Regions[idx].States() {
			var step float64
			if idx == 0 {
				if start == 0 {
					step = pBefore[s]
				} else {
					// One Markov transition from the pre-window state
					// distribution into the first region.
					step = 0
					for i, pi := range pBefore {
						step += pi * c.Prob(i, s)
					}
				}
			} else {
				step = c.Prob(states[idx-1], s)
			}
			if step == 0 {
				continue
			}
			e := emission(t, obs[idx], s)
			if e == 0 {
				continue
			}
			states[idx] = s
			rec(idx+1, w*step*e)
		}
	}
	rec(0, 1)
	return total, nil
}

// NaivePatternPrior sums Pr over all region trajectories of the pattern
// (Example B.1), given the state distribution just before the window.
func NaivePatternPrior(c *markov.Chain, pBefore mat.Vector, p *Pattern) (float64, error) {
	one := func(int, int, int) float64 { return 1 }
	start, end := p.Window()
	obs := make([]int, end-start+1)
	return NaivePatternJoint(c, pBefore, p, obs, one)
}

// TrajectoryCount returns the number of region trajectories Algorithm 4
// enumerates: ∏ |Regions[i]|. Used by the Fig. 14 harness to report the
// baseline's exponential blow-up.
func (p *Pattern) TrajectoryCount() int {
	n := 1
	for _, r := range p.Regions {
		n *= r.Count()
	}
	return n
}

func checkNaiveArgs(c *markov.Chain, pi mat.Vector, expr *Expr, horizon int) error {
	if expr == nil {
		return fmt.Errorf("event: nil expression")
	}
	if horizon <= expr.MaxTime() {
		return fmt.Errorf("event: horizon %d does not cover expression max time %d", horizon, expr.MaxTime())
	}
	if c.States() != len(pi) {
		return fmt.Errorf("event: initial length %d != states %d", len(pi), c.States())
	}
	if !pi.IsDistribution(1e-8) {
		return fmt.Errorf("event: initial vector is not a distribution")
	}
	return nil
}

// forEachTrajectory enumerates all m^horizon trajectories with their
// probabilities, skipping zero-probability prefixes.
func forEachTrajectory(c *markov.Chain, pi mat.Vector, horizon int, f func(traj []int, p float64)) {
	traj := make([]int, horizon)
	m := c.States()
	var rec func(t int, p float64)
	rec = func(t int, p float64) {
		if t == horizon {
			f(traj, p)
			return
		}
		for s := 0; s < m; s++ {
			var step float64
			if t == 0 {
				step = pi[s]
			} else {
				step = c.Prob(traj[t-1], s)
			}
			if step == 0 {
				continue
			}
			traj[t] = s
			rec(t+1, p*step)
		}
	}
	rec(0, 1)
}
