package event

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"priste/internal/grid"
	"priste/internal/markov"
	"priste/internal/mat"
)

func TestSparsePresenceValidation(t *testing.T) {
	r := grid.MustRegionOf(3, 0)
	if _, err := NewSparsePresence(grid.NewRegion(3), []int{1}); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := NewSparsePresence(r, nil); err == nil {
		t.Error("empty times accepted")
	}
	if _, err := NewSparsePresence(r, []int{-1}); err == nil {
		t.Error("negative time accepted")
	}
	p, err := NewSparsePresence(r, []int{4, 1, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Times(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("times = %v", got)
	}
}

func TestSparsePresenceSemantics(t *testing.T) {
	r := grid.MustRegionOf(3, 0)
	p, err := NewSparsePresence(r, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s, e := p.Window(); s != 1 || e != 3 {
		t.Fatalf("window = %d..%d", s, e)
	}
	if !p.Sticky() {
		t.Error("sparse presence must be sticky")
	}
	// Gap timestamp 2 is not protected: a visit there does not trigger.
	if p.Truth([]int{0, 2, 0, 2}) {
		t.Error("gap visit should not count")
	}
	if !p.Truth([]int{2, 0, 2, 2}) {
		t.Error("t=1 visit should count")
	}
	if !p.Truth([]int{2, 2, 2, 0}) {
		t.Error("t=3 visit should count")
	}
	// RegionAt: listed vs gap.
	if p.RegionAt(1) != r {
		t.Error("listed timestamp region wrong")
	}
	if !p.RegionAt(2).IsEmpty() {
		t.Error("gap timestamp should carry empty region")
	}
	// Expr equivalence.
	e := p.Expr()
	for _, traj := range [][]int{{0, 0, 0, 0}, {1, 1, 0, 1}, {2, 2, 2, 2}, {2, 0, 1, 1}} {
		if e.Eval(traj) != p.Truth(traj) {
			t.Errorf("expr/truth mismatch on %v", traj)
		}
	}
}

func TestSparsePatternValidation(t *testing.T) {
	r := grid.MustRegionOf(3, 0)
	if _, err := NewSparsePattern(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewSparsePattern([]int{1}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewSparsePattern([]int{1, 1}, []*grid.Region{r, r}); err == nil {
		t.Error("duplicate timestamp accepted")
	}
	if _, err := NewSparsePattern([]int{-1}, []*grid.Region{r}); err == nil {
		t.Error("negative timestamp accepted")
	}
	if _, err := NewSparsePattern([]int{1}, []*grid.Region{grid.NewRegion(3)}); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := NewSparsePattern([]int{1, 2}, []*grid.Region{r, grid.MustRegionOf(4, 0)}); err == nil {
		t.Error("state-space mismatch accepted")
	}
}

func TestSparsePatternSemantics(t *testing.T) {
	rA := grid.MustRegionOf(3, 0)
	rB := grid.MustRegionOf(3, 2)
	// Constrain t=1 and t=3; t=2 free.
	p, err := NewSparsePattern([]int{3, 1}, []*grid.Region{rB, rA})
	if err != nil {
		t.Fatal(err)
	}
	if s, e := p.Window(); s != 1 || e != 3 {
		t.Fatalf("window = %d..%d", s, e)
	}
	if p.Sticky() {
		t.Error("pattern must not be sticky")
	}
	if !p.Truth([]int{1, 0, 1, 2}) {
		t.Error("satisfying trajectory rejected")
	}
	if !p.Truth([]int{1, 0, 2, 2}) {
		t.Error("gap state must be unconstrained")
	}
	if p.Truth([]int{1, 1, 1, 2}) {
		t.Error("t=1 violation accepted")
	}
	if p.Truth([]int{1, 0, 1, 1}) {
		t.Error("t=3 violation accepted")
	}
	// Gap timestamp carries the full map.
	if p.RegionAt(2).Count() != 3 {
		t.Errorf("gap region = %v", p.RegionAt(2).States())
	}
	e := p.Expr()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		traj := []int{rng.Intn(3), rng.Intn(3), rng.Intn(3), rng.Intn(3)}
		if e.Eval(traj) != p.Truth(traj) {
			t.Fatalf("expr/truth mismatch on %v", traj)
		}
	}
}

// Property: naive prior of the sparse events' expressions equals the
// enumerated trajectory probability of Truth (consistency of the two
// definitions under the paper chain).
func TestSparseEventsNaiveConsistencyProperty(t *testing.T) {
	c := markov.MustNewChain(mat.FromRows([][]float64{
		{0.1, 0.2, 0.7},
		{0.4, 0.1, 0.5},
		{0, 0.1, 0.9},
	}))
	pi := markov.Uniform(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ev Event
		if rng.Intn(2) == 0 {
			times := []int{rng.Intn(2), 2 + rng.Intn(2)}
			region := grid.MustRegionOf(3, rng.Intn(3))
			p, err := NewSparsePresence(region, times)
			if err != nil {
				return false
			}
			ev = p
		} else {
			times := []int{rng.Intn(2), 2 + rng.Intn(2)}
			regions := []*grid.Region{
				grid.MustRegionOf(3, rng.Intn(3), (rng.Intn(3)+1)%3),
				grid.MustRegionOf(3, rng.Intn(3)),
			}
			p, err := NewSparsePattern(times, regions)
			if err != nil {
				return false
			}
			ev = p
		}
		_, end := ev.Window()
		viaExpr, err := NaivePrior(c, pi, ev.Expr(), end+1)
		if err != nil {
			return false
		}
		// Enumerate trajectories and apply Truth directly.
		var viaTruth float64
		horizon := end + 1
		forEachTrajectory(c, pi, horizon, func(traj []int, p float64) {
			if ev.Truth(traj) {
				viaTruth += p
			}
		})
		return math.Abs(viaExpr-viaTruth) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
