package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, 1); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := New(3, -1, 1); err == nil {
		t.Error("expected error for negative height")
	}
	if _, err := New(3, 3, 0); err == nil {
		t.Error("expected error for zero cell size")
	}
	if _, err := New(3, 3, math.NaN()); err == nil {
		t.Error("expected error for NaN cell size")
	}
	if _, err := New(3, 3, 1); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
}

func TestStateXYRoundTrip(t *testing.T) {
	g := MustNew(4, 3, 1)
	if g.States() != 12 {
		t.Fatalf("States = %d", g.States())
	}
	for s := 0; s < g.States(); s++ {
		x, y := g.XY(s)
		if got := g.State(x, y); got != s {
			t.Fatalf("round trip %d -> (%d,%d) -> %d", s, x, y, got)
		}
	}
}

func TestCenterAndDist(t *testing.T) {
	g := MustNew(3, 3, 2) // 2 km cells
	cx, cy := g.Center(0)
	if cx != 1 || cy != 1 {
		t.Fatalf("Center(0) = (%v,%v)", cx, cy)
	}
	// states 0 and 2 are two cells apart horizontally: 4 km.
	if d := g.Dist(0, 2); math.Abs(d-4) > 1e-12 {
		t.Fatalf("Dist(0,2) = %v", d)
	}
	// diagonal neighbour: 2*sqrt(2).
	if d := g.Dist(0, 4); math.Abs(d-2*math.Sqrt2) > 1e-12 {
		t.Fatalf("Dist(0,4) = %v", d)
	}
}

func TestSnap(t *testing.T) {
	g := MustNew(3, 3, 1)
	if s := g.Snap(0.4, 0.4); s != 0 {
		t.Errorf("Snap(0.4,0.4) = %d", s)
	}
	if s := g.Snap(2.9, 2.9); s != 8 {
		t.Errorf("Snap(2.9,2.9) = %d", s)
	}
	// Out-of-bounds clamps to boundary.
	if s := g.Snap(-5, 1.5); s != g.State(0, 1) {
		t.Errorf("Snap clamp left = %d", s)
	}
	if s := g.Snap(100, 100); s != 8 {
		t.Errorf("Snap clamp corner = %d", s)
	}
}

func TestSnapCenterRoundTripProperty(t *testing.T) {
	g := MustNew(7, 5, 0.5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := rng.Intn(g.States())
		cx, cy := g.Center(s)
		return g.Snap(cx, cy) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceMatrix(t *testing.T) {
	g := MustNew(2, 2, 1)
	d := g.DistanceMatrix()
	if d.At(0, 0) != 0 {
		t.Error("diagonal not zero")
	}
	if d.At(0, 3) != d.At(3, 0) {
		t.Error("not symmetric")
	}
	if math.Abs(d.At(0, 3)-math.Sqrt2) > 1e-12 {
		t.Errorf("diag dist = %v", d.At(0, 3))
	}
}

func TestRegionBasics(t *testing.T) {
	r := MustRegionOf(5, 1, 3)
	if r.Count() != 2 || !r.Contains(1) || !r.Contains(3) || r.Contains(0) {
		t.Fatalf("region wrong: %v", r.States())
	}
	r.Add(0)
	if !r.Contains(0) || r.Count() != 3 {
		t.Fatalf("Add failed: %v", r.States())
	}
	if got := r.States(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("States = %v", got)
	}
}

func TestRegionOfValidation(t *testing.T) {
	if _, err := RegionOf(3, 5); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := RegionOf(3, -1); err == nil {
		t.Error("expected negative-state error")
	}
}

func TestRegionRange(t *testing.T) {
	r, err := RegionRange(10, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 5 {
		t.Fatalf("Count = %d", r.Count())
	}
	if _, err := RegionRange(10, 4, 2); err == nil {
		t.Error("expected error for inverted range")
	}
	if _, err := RegionRange(10, 0, 10); err == nil {
		t.Error("expected error for hi == m")
	}
}

func TestRegionRect(t *testing.T) {
	g := MustNew(4, 4, 1)
	r, err := RegionRect(g, 1, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 4 {
		t.Fatalf("Count = %d", r.Count())
	}
	for _, s := range []int{g.State(1, 1), g.State(2, 1), g.State(1, 2), g.State(2, 2)} {
		if !r.Contains(s) {
			t.Fatalf("missing state %d", s)
		}
	}
	if _, err := RegionRect(g, 2, 2, 1, 1); err == nil {
		t.Error("expected error for inverted rect")
	}
}

func TestRegionSetOps(t *testing.T) {
	a := MustRegionOf(4, 0, 1)
	b := MustRegionOf(4, 1, 2)
	if u := a.Union(b); u.Count() != 3 || !u.Contains(0) || !u.Contains(2) {
		t.Fatalf("Union = %v", u.States())
	}
	if i := a.Intersect(b); i.Count() != 1 || !i.Contains(1) {
		t.Fatalf("Intersect = %v", i.States())
	}
	c := a.Complement()
	if c.Count() != 2 || !c.Contains(2) || !c.Contains(3) {
		t.Fatalf("Complement = %v", c.States())
	}
	if !a.Equal(MustRegionOf(4, 1, 0)) {
		t.Error("Equal order-independent failed")
	}
	if a.Equal(b) {
		t.Error("distinct regions reported equal")
	}
}

func TestRegionComplementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(20)
		r := NewRegion(m)
		for s := 0; s < m; s++ {
			if rng.Intn(2) == 0 {
				r.Add(s)
			}
		}
		c := r.Complement()
		return r.Count()+c.Count() == m && r.Intersect(c).IsEmpty() && r.Union(c).Count() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
