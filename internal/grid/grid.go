// Package grid models the discretised map the paper works on: a rectangular
// grid of m = W×H cells, each cell one state sᵢ of the location domain
// S = {s₁,…,s_m}. It provides cell geometry (centers, Euclidean distances in
// user units such as km), index conversions and region vectors
// s ∈ {0,1}^m used by PRESENCE/PATTERN events.
package grid

import (
	"fmt"
	"math"

	"priste/internal/mat"
)

// Grid is a W×H rectangular map. States are numbered row-major:
// state = y*W + x with x ∈ [0,W), y ∈ [0,H). CellSize is the edge length of
// a cell in user units (e.g. km); distances returned by Dist are in the
// same units.
type Grid struct {
	W, H     int
	CellSize float64
}

// New returns a W×H grid with the given cell edge length.
func New(w, h int, cellSize float64) (*Grid, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("grid: dimensions must be positive, got %d×%d", w, h)
	}
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("grid: cell size must be positive and finite, got %g", cellSize)
	}
	return &Grid{W: w, H: h, CellSize: cellSize}, nil
}

// MustNew is New that panics on error; for tests and literals.
func MustNew(w, h int, cellSize float64) *Grid {
	g, err := New(w, h, cellSize)
	if err != nil {
		panic(err)
	}
	return g
}

// States returns the number of cells m = W×H.
func (g *Grid) States() int { return g.W * g.H }

// XY converts a state index to grid coordinates.
func (g *Grid) XY(state int) (x, y int) {
	g.check(state)
	return state % g.W, state / g.W
}

// State converts grid coordinates to a state index.
func (g *Grid) State(x, y int) int {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		panic(fmt.Sprintf("grid: coordinates (%d,%d) outside %d×%d", x, y, g.W, g.H))
	}
	return y*g.W + x
}

// Contains reports whether (x,y) lies on the grid.
func (g *Grid) Contains(x, y int) bool {
	return x >= 0 && x < g.W && y >= 0 && y < g.H
}

// Center returns the center of a cell in user units.
func (g *Grid) Center(state int) (cx, cy float64) {
	x, y := g.XY(state)
	return (float64(x) + 0.5) * g.CellSize, (float64(y) + 0.5) * g.CellSize
}

// Dist returns the Euclidean distance between the centers of two cells in
// user units.
func (g *Grid) Dist(a, b int) float64 {
	ax, ay := g.Center(a)
	bx, by := g.Center(b)
	return math.Hypot(ax-bx, ay-by)
}

// DistXY returns the Euclidean distance between a cell center and an
// arbitrary point in user units.
func (g *Grid) DistXY(state int, px, py float64) float64 {
	cx, cy := g.Center(state)
	return math.Hypot(cx-px, cy-py)
}

// Snap returns the state whose cell contains (px,py), clamping coordinates
// that fall outside the map onto the boundary. Used to discretise continuous
// planar-Laplace samples.
func (g *Grid) Snap(px, py float64) int {
	x := int(math.Floor(px / g.CellSize))
	y := int(math.Floor(py / g.CellSize))
	if x < 0 {
		x = 0
	}
	if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.H {
		y = g.H - 1
	}
	return g.State(x, y)
}

// DistanceMatrix returns the m×m matrix of pairwise cell-center distances.
func (g *Grid) DistanceMatrix() *mat.Matrix {
	m := g.States()
	d := mat.NewMatrix(m, m)
	centers := make([][2]float64, m)
	for s := 0; s < m; s++ {
		cx, cy := g.Center(s)
		centers[s] = [2]float64{cx, cy}
	}
	for i := 0; i < m; i++ {
		row := d.Row(i)
		for j := 0; j < m; j++ {
			row[j] = math.Hypot(centers[i][0]-centers[j][0], centers[i][1]-centers[j][1])
		}
	}
	return d
}

func (g *Grid) check(state int) {
	if state < 0 || state >= g.States() {
		panic(fmt.Sprintf("grid: state %d outside [0,%d)", state, g.States()))
	}
}

// Region is an indicator vector s ∈ {0,1}^m marking a set of states
// (Definition II.2 of the paper uses column vectors; we store them densely).
type Region struct {
	mask mat.Vector
}

// NewRegion returns an empty region over m states.
func NewRegion(m int) *Region {
	return &Region{mask: mat.NewVector(m)}
}

// RegionOf returns a region over m states containing the given states.
func RegionOf(m int, states ...int) (*Region, error) {
	r := NewRegion(m)
	for _, s := range states {
		if s < 0 || s >= m {
			return nil, fmt.Errorf("grid: region state %d outside [0,%d)", s, m)
		}
		r.mask[s] = 1
	}
	return r, nil
}

// MustRegionOf is RegionOf that panics on error.
func MustRegionOf(m int, states ...int) *Region {
	r, err := RegionOf(m, states...)
	if err != nil {
		panic(err)
	}
	return r
}

// RegionRange returns a region containing states lo..hi inclusive, matching
// the paper's notation S = {lo:hi} (1-based in the paper; this API is
// 0-based).
func RegionRange(m, lo, hi int) (*Region, error) {
	if lo < 0 || hi >= m || lo > hi {
		return nil, fmt.Errorf("grid: region range [%d,%d] invalid for m=%d", lo, hi, m)
	}
	r := NewRegion(m)
	for s := lo; s <= hi; s++ {
		r.mask[s] = 1
	}
	return r, nil
}

// RegionRect returns the region of all cells in the axis-aligned rectangle
// [x0,x1]×[y0,y1] (inclusive).
func RegionRect(g *Grid, x0, y0, x1, y1 int) (*Region, error) {
	if !g.Contains(x0, y0) || !g.Contains(x1, y1) || x0 > x1 || y0 > y1 {
		return nil, fmt.Errorf("grid: rectangle (%d,%d)-(%d,%d) invalid for %d×%d grid",
			x0, y0, x1, y1, g.W, g.H)
	}
	r := NewRegion(g.States())
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			r.mask[g.State(x, y)] = 1
		}
	}
	return r, nil
}

// Len returns the size m of the underlying state space.
func (r *Region) Len() int { return len(r.mask) }

// Contains reports whether state s belongs to the region.
func (r *Region) Contains(s int) bool { return r.mask[s] != 0 }

// Add inserts state s.
func (r *Region) Add(s int) {
	if s < 0 || s >= len(r.mask) {
		panic(fmt.Sprintf("grid: region state %d outside [0,%d)", s, len(r.mask)))
	}
	r.mask[s] = 1
}

// Count returns the number of states in the region (the "event width" of
// the paper's runtime experiments).
func (r *Region) Count() int {
	n := 0
	for _, v := range r.mask {
		if v != 0 {
			n++
		}
	}
	return n
}

// States returns the sorted member states.
func (r *Region) States() []int {
	out := make([]int, 0, r.Count())
	for s, v := range r.mask {
		if v != 0 {
			out = append(out, s)
		}
	}
	return out
}

// Mask returns the indicator vector; callers must not mutate it.
func (r *Region) Mask() mat.Vector { return r.mask }

// Complement returns the region of all states not in r.
func (r *Region) Complement() *Region {
	c := NewRegion(len(r.mask))
	for s, v := range r.mask {
		if v == 0 {
			c.mask[s] = 1
		}
	}
	return c
}

// Union returns r ∪ o.
func (r *Region) Union(o *Region) *Region {
	if len(r.mask) != len(o.mask) {
		panic("grid: region size mismatch")
	}
	u := NewRegion(len(r.mask))
	for s := range r.mask {
		if r.mask[s] != 0 || o.mask[s] != 0 {
			u.mask[s] = 1
		}
	}
	return u
}

// Intersect returns r ∩ o.
func (r *Region) Intersect(o *Region) *Region {
	if len(r.mask) != len(o.mask) {
		panic("grid: region size mismatch")
	}
	u := NewRegion(len(r.mask))
	for s := range r.mask {
		if r.mask[s] != 0 && o.mask[s] != 0 {
			u.mask[s] = 1
		}
	}
	return u
}

// IsEmpty reports whether the region has no states.
func (r *Region) IsEmpty() bool { return r.Count() == 0 }

// Equal reports whether two regions mark exactly the same states.
func (r *Region) Equal(o *Region) bool {
	if len(r.mask) != len(o.mask) {
		return false
	}
	for s := range r.mask {
		if (r.mask[s] != 0) != (o.mask[s] != 0) {
			return false
		}
	}
	return true
}
