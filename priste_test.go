package priste_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"priste"
)

// TestEndToEndPresence drives the whole public API: map, chain, event,
// mechanism, framework, release, realised-loss audit.
func TestEndToEndPresence(t *testing.T) {
	g, err := priste.NewGrid(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := priste.GaussianChain(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	region, err := priste.RegionRect(g, 0, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := priste.NewPresence(region, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	fw, err := priste.NewFramework(priste.NewPlanarLaplace(g), priste.Homogeneous(chain),
		[]priste.Event{ev}, priste.DefaultConfig(0.5, 1.0), rng)
	if err != nil {
		t.Fatal(err)
	}
	traj := chain.SamplePath(rng, priste.UniformDistribution(16), 7)
	results, err := fw.Run(traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("released %d steps", len(results))
	}
	loss, err := fw.RealizedLoss(0, priste.UniformDistribution(16))
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.5+1e-6 {
		t.Fatalf("realised loss %v exceeds epsilon 0.5", loss)
	}
}

// TestQuantifierAPI checks the quantification entry points.
func TestQuantifierAPI(t *testing.T) {
	g, _ := priste.NewGrid(3, 1, 1)
	m := priste.NewMatrix(3, 3)
	rows := [][]float64{{0.1, 0.2, 0.7}, {0.4, 0.1, 0.5}, {0, 0.1, 0.9}}
	for i, r := range rows {
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	_ = g
	chain, err := priste.NewChain(m)
	if err != nil {
		t.Fatal(err)
	}
	region, err := priste.RegionOf(3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := priste.NewPresence(region, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	md, err := priste.NewQuantModel(priste.Homogeneous(chain), ev)
	if err != nil {
		t.Fatal(err)
	}
	// Appendix C golden value.
	pi := priste.Vector{0.2, 0.3, 0.5}
	prior, err := priste.EventPrior(md, pi)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.2*0.28 + 0.3*0.298 + 0.5*0.226
	if math.Abs(prior-want) > 1e-12 {
		t.Fatalf("prior = %v want %v", prior, want)
	}
	// Uninformative observations leak nothing.
	u := priste.Vector{1. / 3, 1. / 3, 1. / 3}
	loss, err := priste.PrivacyLoss(md, priste.UniformDistribution(3), []priste.Vector{u, u})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-10 {
		t.Fatalf("loss = %v", loss)
	}
	// Streaming quantifier + certified check.
	q := priste.NewQuantifier(md)
	chk, err := q.Check(u)
	if err != nil {
		t.Fatal(err)
	}
	chk.Epsilon = 0.1
	dec, err := priste.CheckRelease(chk, priste.ReleaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.OK {
		t.Fatalf("uninformative candidate rejected: %+v", dec)
	}
}

// TestExpressionAPI exercises the Boolean-expression builders.
func TestExpressionAPI(t *testing.T) {
	e := priste.And(priste.Or(priste.Pred(0, 1), priste.Pred(0, 2)), priste.Not(priste.Pred(1, 0)))
	if !e.Eval([]int{1, 2}) {
		t.Error("expected true")
	}
	if e.Eval([]int{1, 0}) {
		t.Error("expected false")
	}
}

// TestMobilityPipeline: generate → discretise → train → release with the
// δ-location-set mechanism.
func TestMobilityPipeline(t *testing.T) {
	g, _ := priste.NewGrid(5, 5, 1)
	ds, err := priste.GenerateMobility(priste.MobilityConfig{Grid: g, Days: 8, StepsPerDay: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := priste.TrainChain(ds.States, priste.TrainOptions{States: 25, Smoothing: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := priste.EmpiricalInitial(ds.States, 25, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := priste.NewDeltaLocationSet(g, chain, pi, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	region, err := priste.RegionOf(25, ds.Work)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := priste.NewPresence(region, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	fw, err := priste.NewFramework(mech, priste.Homogeneous(chain), []priste.Event{ev},
		priste.DefaultConfig(1.0, 1.0), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Run(ds.States[0][:8]); err != nil {
		t.Fatal(err)
	}
	// Trace round trip through the facade.
	var buf bytes.Buffer
	if err := priste.WriteStates(&buf, ds.States[:2]); err != nil {
		t.Fatal(err)
	}
	back, err := priste.ReadStates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip lost trajectories: %d", len(back))
	}
}

// TestHMMAdversary: the facade's HMM can be used to simulate an inference
// adversary over released observations.
func TestHMMAdversary(t *testing.T) {
	g, _ := priste.NewGrid(3, 1, 1)
	chain, err := priste.GaussianChain(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	plm := priste.NewPlanarLaplace(g)
	em, err := plm.Emission(2)
	if err != nil {
		t.Fatal(err)
	}
	model, err := priste.NewHMM(chain, priste.UniformDistribution(3), em)
	if err != nil {
		t.Fatal(err)
	}
	post, err := model.Smooth([]int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if post[1].ArgMax() != 0 {
		t.Fatalf("adversary posterior mode = %d", post[1].ArgMax())
	}
}
