// Adversary audit: define a custom spatiotemporal event as a Boolean
// expression (Definition II.1), compile it, and watch a Bayesian
// adversary's belief evolve against an unprotected versus a PriSTE-
// protected release — including localisation and trajectory-recovery
// attacks.
//
// Run: go run ./examples/adversary_audit
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"priste"
)

func main() {
	g, err := priste.NewGrid(6, 6, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	m := g.States()
	chain, err := priste.GaussianChain(g, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	pi := priste.UniformDistribution(m)

	// A custom event straight from Boolean logic: "at t=2 the user is in
	// cell 7 or 8, AND at t=4 in cell 14 or 15" — a Fig. 1(e)-style
	// trajectory pattern no plain LPPM metric speaks about.
	expr := priste.And(
		priste.Or(priste.Pred(2, 7), priste.Pred(2, 8)),
		priste.Or(priste.Pred(4, 14), priste.Pred(4, 15)),
	)
	ev, err := priste.CompileEvent(expr, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled event: %v\n  from expression %v\n\n", ev, expr)

	adv, err := priste.NewAdversary(chain, pi, g)
	if err != nil {
		log.Fatal(err)
	}

	// A guilty trajectory satisfying the pattern.
	truth := []int{1, 7, 8, 14, 15, 21, 22, 28}
	rng := rand.New(rand.NewSource(17))

	// --- Unprotected release: bare 3-PLM. ---
	plm := priste.NewPlanarLaplace(g)
	em, err := plm.Emission(3.0)
	if err != nil {
		log.Fatal(err)
	}
	cols := make([]priste.Vector, len(truth))
	for t, u := range truth {
		o := sample(rng, em.Row(u))
		cols[t] = em.Col(o)
	}
	report("bare 3-PLM (unprotected)", adv, ev, cols, truth)

	// --- PriSTE-protected release at eps = 0.4. ---
	const eps = 0.4
	fw, err := priste.NewFramework(plm, priste.Homogeneous(chain),
		[]priste.Event{ev}, priste.DefaultConfig(eps, 3.0), rng)
	if err != nil {
		log.Fatal(err)
	}
	results, err := fw.Run(truth)
	if err != nil {
		log.Fatal(err)
	}
	pcols := make([]priste.Vector, len(results))
	for t, r := range results {
		if r.Uniform {
			u := priste.NewVector(m)
			for i := range u {
				u[i] = 1 / float64(m)
			}
			pcols[t] = u
			continue
		}
		e, err := plm.Emission(r.Alpha)
		if err != nil {
			log.Fatal(err)
		}
		pcols[t] = e.Col(r.Obs)
	}
	report(fmt.Sprintf("PriSTE, eps=%g (bound e^eps = %.2f)", eps, math.Exp(eps)), adv, ev, pcols, truth)
}

func report(name string, adv *priste.Adversary, ev priste.Event, cols []priste.Vector, truth []int) {
	inf, err := adv.InferEvent(ev, cols)
	if err != nil {
		log.Fatal(err)
	}
	loc, err := adv.InferLocations(cols, truth)
	if err != nil {
		log.Fatal(err)
	}
	_, acc, err := adv.RecoverTrajectory(cols, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  event prior %.4f -> final posterior %.4f (odds shift x%.2f, guess=%v)\n",
		inf.Prior, inf.Posterior[len(inf.Posterior)-1], inf.OddsShift, inf.Guess)
	fmt.Printf("  localisation: hit rate %.0f%%, mean error %.2f km\n", loc.HitRate*100, loc.MeanError)
	fmt.Printf("  trajectory recovery accuracy: %.0f%%\n\n", acc*100)
}

func sample(rng *rand.Rand, row priste.Vector) int {
	x := rng.Float64()
	acc := 0.0
	for i, p := range row {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(row) - 1
}
