// Commute pattern: protect a PATTERN event — "travelled from the home
// district to the work district this morning" — plus a second PRESENCE
// event simultaneously, the multi-event setting of Fig. 9.
//
// A PATTERN is the paper's generalisation of trajectory privacy: the
// adversary must stay unsure whether the user's path went through the
// home region and then the work region in sequence, which reveals the
// home/work pair (the classic re-identification attack of Golle &
// Partridge cited in §I).
//
// Run: go run ./examples/commute_pattern
package main

import (
	"fmt"
	"log"
	"math/rand"

	"priste"
)

func main() {
	g, err := priste.NewGrid(8, 8, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	m := g.States()
	ds, err := priste.GenerateMobility(priste.MobilityConfig{Grid: g, Days: 30, StepsPerDay: 32, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	chain, err := priste.TrainChain(ds.States, priste.TrainOptions{States: m, Smoothing: 0.01})
	if err != nil {
		log.Fatal(err)
	}

	// Home and work districts: 2×2 blocks around the anchors.
	homeRegion := blockAround(g, ds.Home)
	workRegion := blockAround(g, ds.Work)

	// PATTERN: in the home district at t=1..2, then the work district at
	// t=3..4 — region sequence [home, home, work, work] from t=1.
	commute, err := priste.NewPattern([]*priste.Region{homeRegion, homeRegion, workRegion, workRegion}, 1)
	if err != nil {
		log.Fatal(err)
	}
	// A second, later secret: evening presence back in the home district.
	evening, err := priste.NewPresence(homeRegion, 9, 11)
	if err != nil {
		log.Fatal(err)
	}

	const epsilon = 0.8
	rng := rand.New(rand.NewSource(3))
	fw, err := priste.NewFramework(
		priste.NewPlanarLaplace(g),
		priste.Homogeneous(chain),
		[]priste.Event{commute, evening},
		priste.DefaultConfig(epsilon, 1.5),
		rng,
	)
	if err != nil {
		log.Fatal(err)
	}

	truth := ds.States[1][:13]
	fmt.Printf("protecting two events simultaneously with epsilon=%g:\n  %v\n  %v\n\n", epsilon, commute, evening)
	fmt.Println("  t  true  released  budget")
	results, err := fw.Run(truth)
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, r := range results {
		total += r.Alpha
		fmt.Printf("%3d  %4d  %8d  %6.4f\n", r.T, truth[r.T], r.Obs, r.Alpha)
	}
	fmt.Printf("\naverage budget: %.4f (multi-event protection costs more than single-event, cf. Fig. 9)\n",
		total/float64(len(results)))

	for i, ev := range []priste.Event{commute, evening} {
		loss, err := fw.RealizedLoss(i, priste.UniformDistribution(m))
		if err != nil {
			fmt.Printf("event %d (%v): prior degenerate under uniform belief\n", i, ev)
			continue
		}
		fmt.Printf("event %d realised loss: %.4f <= %g\n", i, loss, epsilon)
	}
}

// blockAround returns the 2×2 region whose top-left corner is the given
// cell, clamped to the map.
func blockAround(g *priste.Grid, s int) *priste.Region {
	x, y := g.XY(s)
	if x >= g.W-1 {
		x = g.W - 2
	}
	if y >= g.H-1 {
		y = g.H - 2
	}
	r, err := priste.RegionRect(g, x, y, x+1, y+1)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
