// Quickstart: protect a PRESENCE event while releasing a perturbed
// trajectory through the planar Laplace mechanism.
//
// A user moves on a 10×10 km grid. The secret is "did the user visit the
// clinic district (a 2×2 block) at any time during timestamps 3..7?" —
// exactly the kind of spatiotemporal event the paper shows plain location
// privacy does not cover. PriSTE calibrates the mechanism's budget at each
// timestamp so an adversary with ANY prior belief about the user's
// starting point cannot change their odds about the event by more than
// e^ε.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"priste"
)

func main() {
	const (
		epsilon = 0.5 // ε-spatiotemporal event privacy
		alpha   = 1.0 // initial planar-Laplace budget (1/km)
		horizon = 12
	)
	g, err := priste.NewGrid(10, 10, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	chain, err := priste.GaussianChain(g, 1.0)
	if err != nil {
		log.Fatal(err)
	}

	// The sensitive clinic district: cells (2,2)-(3,3).
	clinic, err := priste.RegionRect(g, 2, 2, 3, 3)
	if err != nil {
		log.Fatal(err)
	}
	visit, err := priste.NewPresence(clinic, 3, 7)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	fw, err := priste.NewFramework(
		priste.NewPlanarLaplace(g),
		priste.Homogeneous(chain),
		[]priste.Event{visit},
		priste.DefaultConfig(epsilon, alpha),
		rng,
	)
	if err != nil {
		log.Fatal(err)
	}

	// A true trajectory that passes through the clinic.
	truth := chain.SamplePath(rng, priste.UniformDistribution(g.States()), horizon)
	truth[4] = clinic.States()[0] // force a sensitive visit
	fmt.Printf("protecting %v with epsilon=%g\n\n", visit, epsilon)
	fmt.Println("  t  true cell  released cell  budget   attempts")

	results, err := fw.Run(truth)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		mark := " "
		if clinic.Contains(truth[r.T]) {
			mark = "*" // truly inside the sensitive region
		}
		fmt.Printf("%s%3d  %9d  %13d  %6.4f  %8d\n", mark, r.T, truth[r.T], r.Obs, r.Alpha, r.Attempts)
	}

	// Audit: the realised privacy loss for an adversary with a uniform
	// prior must stay within epsilon (the release-time certificate covers
	// every prior, this just demonstrates one).
	loss, err := fw.RealizedLoss(0, priste.UniformDistribution(g.States()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrealised privacy loss (uniform prior): %.4f <= epsilon %.1f\n", loss, epsilon)
}
