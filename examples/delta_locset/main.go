// δ-location-set case study: compare PriSTE around plain geo-
// indistinguishability (Algorithm 2) with PriSTE around δ-location-set
// privacy (Algorithm 3), the paper's second case study (§IV-D, Fig. 10).
//
// The δ-location-set mechanism exploits temporal correlation: it restricts
// the output domain to the states the Markov prior considers plausible,
// which buys utility (smaller Euclidean error) but — as the paper observes
// — implies a weaker standalone privacy metric, so PriSTE has to calibrate
// its budget more aggressively to protect the same event.
//
// Run: go run ./examples/delta_locset
package main

import (
	"fmt"
	"log"
	"math/rand"

	"priste"
)

func main() {
	const (
		epsilon = 0.5
		alpha   = 1.0
		horizon = 15
		runs    = 8
	)
	g, err := priste.NewGrid(8, 8, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	m := g.States()
	chain, err := priste.GaussianChain(g, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	pi := priste.UniformDistribution(m)

	region, err := priste.RegionRect(g, 0, 0, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := priste.NewPresence(region, 3, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event: %v, epsilon=%g, initial alpha=%g, %d runs\n\n", ev, epsilon, alpha, runs)
	fmt.Println("mechanism            avg budget   avg Euclid err (km)   uniform fallbacks")

	type build func(rng *rand.Rand) (priste.Mechanism, error)
	cases := []struct {
		name  string
		build build
	}{
		{"geo-ind (Alg. 2)", func(*rand.Rand) (priste.Mechanism, error) {
			return priste.NewPlanarLaplace(g), nil
		}},
		{"delta=0.2 (Alg. 3)", func(*rand.Rand) (priste.Mechanism, error) {
			return priste.NewDeltaLocationSet(g, chain, pi, 0.2)
		}},
		{"delta=0.5 (Alg. 3)", func(*rand.Rand) (priste.Mechanism, error) {
			return priste.NewDeltaLocationSet(g, chain, pi, 0.5)
		}},
	}
	for _, c := range cases {
		var budget, dist float64
		uniform, steps := 0, 0
		for k := 0; k < runs; k++ {
			rng := rand.New(rand.NewSource(int64(100 + k)))
			mech, err := c.build(rng)
			if err != nil {
				log.Fatal(err)
			}
			fw, err := priste.NewFramework(mech, priste.Homogeneous(chain),
				[]priste.Event{ev}, priste.DefaultConfig(epsilon, alpha), rng)
			if err != nil {
				log.Fatal(err)
			}
			truth := chain.SamplePath(rng, pi, horizon)
			results, err := fw.Run(truth)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range results {
				budget += r.Alpha
				dist += g.Dist(truth[r.T], r.Obs)
				if r.Uniform {
					uniform++
				}
				steps++
			}
		}
		fmt.Printf("%-20s  %9.4f   %19.3f   %17d\n",
			c.name, budget/float64(steps), dist/float64(steps), uniform)
	}
	fmt.Println("\nThe delta-location-set variants calibrate to comparable budgets but their")
	fmt.Println("restricted output domain keeps perturbed locations closer to the truth —")
	fmt.Println("the utility/privacy trade-off the paper reports in Figs. 10 and 12.")
}
