// Hospital presence: quantify how much an UNPROTECTED location-privacy
// mechanism leaks about a spatiotemporal event, then fix it with PriSTE.
//
// This is the paper's motivating scenario (§I): the user is fine sharing
// noisy locations, but "visited the hospital in the last week" must stay
// deniable. A plain planar Laplace mechanism satisfies
// geo-indistinguishability at every timestamp, yet an adversary who knows
// the user's mobility pattern can combine the noisy reports over time and
// become near-certain about the visit. The two-possible-world quantifier
// measures that leakage exactly; the PriSTE framework then bounds it.
//
// Run: go run ./examples/hospital_presence
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"priste"
)

func main() {
	g, err := priste.NewGrid(8, 8, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	m := g.States()

	// Train a mobility model from synthetic commute traces (the paper
	// trains on Geolife; see DESIGN.md for the substitution).
	ds, err := priste.GenerateMobility(priste.MobilityConfig{Grid: g, Days: 40, StepsPerDay: 48, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	chain, err := priste.TrainChain(ds.States, priste.TrainOptions{States: m, Smoothing: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	pi := priste.UniformDistribution(m)

	// The hospital is a single cell near the user's commute corridor.
	hx, hy := g.XY(ds.Work)
	if hx > 0 {
		hx--
	}
	hospital := g.State(hx, hy)
	region, err := priste.RegionOf(m, hospital)
	if err != nil {
		log.Fatal(err)
	}
	visit, err := priste.NewPresence(region, 4, 9)
	if err != nil {
		log.Fatal(err)
	}
	md, err := priste.NewQuantModel(priste.Homogeneous(chain), visit)
	if err != nil {
		log.Fatal(err)
	}
	prior, err := priste.EventPrior(md, pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event: %v (hospital cell %d)\n", visit, hospital)
	fmt.Printf("prior Pr(visit) under uniform belief: %.4f\n\n", prior)

	// A guilty trajectory: commute that detours through the hospital.
	rng := rand.New(rand.NewSource(1))
	truth := ds.States[0][:14]
	truth[5], truth[6] = hospital, hospital

	// --- Unprotected: plain 2-PLM at every timestamp. ---
	plm := priste.NewPlanarLaplace(g)
	em, err := plm.Emission(2.0)
	if err != nil {
		log.Fatal(err)
	}
	cols := make([]priste.Vector, len(truth))
	for t, u := range truth {
		o := sample(rng, em.Row(u))
		cols[t] = em.Col(o)
	}
	loss, err := priste.PrivacyLoss(md, pi, cols)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain 2-PLM (geo-indistinguishable, NOT event-protected):\n")
	fmt.Printf("  realised event-privacy loss: %.3f (odds shift x%.1f)\n\n", loss, math.Exp(loss))

	// --- Protected: the same mechanism inside the PriSTE loop. ---
	const epsilon = 0.5
	fw, err := priste.NewFramework(plm, priste.Homogeneous(chain),
		[]priste.Event{visit}, priste.DefaultConfig(epsilon, 2.0), rng)
	if err != nil {
		log.Fatal(err)
	}
	results, err := fw.Run(truth)
	if err != nil {
		log.Fatal(err)
	}
	var budget float64
	uniform := 0
	for _, r := range results {
		budget += r.Alpha
		if r.Uniform {
			uniform++
		}
	}
	protLoss, err := fw.RealizedLoss(0, pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PriSTE with epsilon=%g around the same 2-PLM:\n", epsilon)
	fmt.Printf("  realised event-privacy loss: %.3f (certified <= %.1f for ANY prior)\n", protLoss, epsilon)
	fmt.Printf("  average released budget: %.3f  (uniform fallbacks: %d/%d)\n",
		budget/float64(len(results)), uniform, len(results))
}

// sample draws an index from a probability row.
func sample(rng *rand.Rand, row priste.Vector) int {
	x := rng.Float64()
	acc := 0.0
	for i, p := range row {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(row) - 1
}
