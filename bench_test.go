// Benchmarks regenerating each table and figure of the paper's evaluation
// at benchmark scale (small map, short horizon, few runs — the shapes, not
// the absolute numbers). Run the full-scale versions with
// `go run ./cmd/experiments -full`.
package priste_test

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"priste"
	"priste/internal/experiments"
)

// benchSynth is the benchmark-scale synthetic workload: 6×6 map, horizon
// 24 (so the Fig. 8/9 window T={16:20} fits), 2 runs.
func benchSynth() experiments.SyntheticConfig {
	return experiments.SyntheticConfig{W: 6, H: 6, Cell: 1, Sigma: 1, T: 24, Runs: 2, Seed: 1}
}

func benchGeo() experiments.GeolifeConfig {
	return experiments.GeolifeConfig{W: 6, H: 6, CellKm: 1, Days: 8, T: 12, Runs: 2, Seed: 2}
}

func benchBudgetFig(b *testing.B, name string, cfg experiments.BudgetFigConfig) {
	b.Helper()
	// One series per panel keeps iterations meaningful.
	cfg.Epsilons = []float64{0.5}
	cfg.Alphas = []float64{0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.BudgetFig(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7: per-timestamp budget for
// PRESENCE(S={1:10}, T={4:8}) under PriSTE with geo-indistinguishability.
func BenchmarkFig7(b *testing.B) {
	benchBudgetFig(b, "Fig7", experiments.DefaultFig7(benchSynth()))
}

// BenchmarkFig8 regenerates Fig. 8 (the later window T={16:20}).
func BenchmarkFig8(b *testing.B) {
	benchBudgetFig(b, "Fig8", experiments.DefaultFig8(benchSynth()))
}

// BenchmarkFig9 regenerates Fig. 9 (two events protected simultaneously).
func BenchmarkFig9(b *testing.B) {
	benchBudgetFig(b, "Fig9", experiments.DefaultFig9(benchSynth()))
}

// BenchmarkFig10 regenerates Fig. 10 (PriSTE with δ-location-set privacy).
func BenchmarkFig10(b *testing.B) {
	benchBudgetFig(b, "Fig10", experiments.DefaultFig10(benchSynth()))
}

// BenchmarkFig11 regenerates Fig. 11: utility vs ε across PLM budgets on
// the Geolife-substitute workload.
func BenchmarkFig11(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(benchGeo(), []float64{1}, []float64{0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12 regenerates Fig. 12: utility vs ε across δ values.
func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(benchGeo(), 0.5, []float64{0.3}, []float64{0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13 regenerates Fig. 13: utility vs ε across mobility-pattern
// strengths σ.
func BenchmarkFig13(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(benchSynth(), []float64{0.1, 10}, 1, []float64{0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14Length regenerates the Fig. 14 left panel: quantification
// runtime versus event length, baseline included.
func BenchmarkFig14Length(b *testing.B) {
	cfg := experiments.DefaultRuntime(benchSynth())
	cfg.Lengths = []int{2, 4, 6}
	cfg.Widths = []int{2}
	cfg.FixedWidth = 3
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig14(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14Width regenerates the Fig. 14 right panel: quantification
// runtime versus event width.
func BenchmarkFig14Width(b *testing.B) {
	cfg := experiments.DefaultRuntime(benchSynth())
	cfg.Lengths = []int{2}
	cfg.Widths = []int{2, 4, 6}
	cfg.FixedLength = 4
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig14(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII regenerates Table III: the conservative-release
// threshold sweep.
func BenchmarkTableIII(b *testing.B) {
	cfg := experiments.DefaultTableIII(benchSynth())
	cfg.Thresholds = []time.Duration{200 * time.Microsecond, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIII(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedPlanManySessions measures the plan/state split on the
// engine hot path: many sessions share one compiled plan (one world
// model, one emission table) and step seeded random walks, with the
// certified-release cache off vs on. Sessions are recycled at a short
// horizon with stable seeds — the serving pattern of many short-lived
// users over one deployment — so with the cache on, sibling sessions
// reuse each other's certified verdicts instead of re-solving the QPs.
func BenchmarkSharedPlanManySessions(b *testing.B) {
	const (
		sessions = 32
		horizon  = 8
	)
	g, err := priste.NewGrid(6, 6, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	chain, err := priste.GaussianChain(g, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := priste.ParseEventSpec("0-5@2-4", g.States(), 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := priste.DefaultConfig(0.5, 1.0)
	cfg.QPTimeout = 0
	// Fixed per-session trajectories so cache-on and cache-off do the
	// same releases.
	trajs := make([][]int, sessions)
	for i := range trajs {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		trajs[i] = chain.SamplePath(rng, priste.UniformDistribution(g.States()), horizon)
	}
	for _, mode := range []struct {
		name  string
		cache bool
	}{{"cache=off", false}, {"cache=on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			plan, err := priste.NewPlan(priste.SharedMechanism(priste.NewPlanarLaplace(g)),
				priste.Homogeneous(chain), []priste.Event{ev}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if mode.cache {
				plan.EnableCache(priste.NewCertCache(1 << 16))
			}
			fws := make([]*priste.Framework, sessions)
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				i := n % sessions
				if fws[i] == nil || fws[i].T() == horizon {
					fw, err := plan.NewSession(rand.New(rand.NewSource(int64(1 + i))))
					if err != nil {
						b.Fatal(err)
					}
					fws[i] = fw
				}
				if _, err := fws[i].Step(trajs[i][fws[i].T()]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
		})
	}
}

// BenchmarkEngineStepCeiling measures the raw engine throughput the
// serving benchmarks are compared against: the exact plan the
// benchmark-scale server compiles (6×6 grid, Gaussian chain, one
// PRESENCE event, certified-release cache on, per-session mechanism and
// PCG session RNG — the server's own session construction), stepped
// directly through per-goroutine Frameworks with no transport, queue,
// or encoding in the way. benchjson divides each ServerStep* result by
// this ceiling to derive the serving_gap section of the artifact.
func BenchmarkEngineStepCeiling(b *testing.B) {
	g, err := priste.NewGrid(6, 6, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	chain, err := priste.GaussianChain(g, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := priste.ParseEventSpec("0-5@2-4", g.States(), 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := priste.DefaultConfig(0.5, 1.0)
	cfg.QPTimeout = 0
	mf := func() (priste.Mechanism, error) { return priste.NewPlanarLaplace(g), nil }
	plan, err := priste.NewPlan(mf, priste.Homogeneous(chain), []priste.Event{ev}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	plan.EnableCache(priste.NewCertCache(1 << 16))
	var nextSession atomic.Int64
	m := g.States()
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		seed := nextSession.Add(1)
		fw, err := plan.NewSession(priste.NewSessionRNG(seed))
		if err != nil {
			b.Error(err)
			return
		}
		rng := rand.New(rand.NewSource(seed))
		for pb.Next() {
			if _, err := fw.Step(rng.Intn(m)); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "steps/sec")
}

// benchServer starts a benchmark-scale pristed server.
func benchServer(b *testing.B) (*priste.Server, priste.ServerConfig) {
	b.Helper()
	cfg := priste.DefaultServerConfig()
	cfg.GridW, cfg.GridH = 6, 6
	cfg.Events = []string{"0-5@2-4"}
	cfg.QPTimeout = 0
	srv, err := priste.NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return srv, cfg
}

// benchSteps drives the serving path through any transport's client:
// parallel goroutines each own one pristed session and step a random
// walk; one iteration is one certified release round-trip. Shared by the
// HTTP and RPC serving benchmarks so the benchjson document records the
// two transports over identical work. After the run it reports the
// server's per-stage mean latencies (decode, queue wait, engine commit,
// WAL append, encode) next to the end-to-end served mean, so the
// artifact names where each transport's serving overhead goes.
func benchSteps(b *testing.B, srv *priste.Server, transport string, cfg priste.ServerConfig, dial func() priste.APIClient) {
	var nextSession atomic.Int64
	m := cfg.GridW * cfg.GridH
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		client := dial()
		ctx := context.Background()
		seed := nextSession.Add(1)
		info, err := client.CreateSession(ctx, priste.CreateSessionRequest{Seed: &seed})
		if err != nil {
			b.Error(err)
			return
		}
		rng := rand.New(rand.NewSource(seed))
		for pb.Next() {
			if _, err := client.Step(ctx, info.ID, rng.Intn(m)); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "steps/sec")
	reportStages(b, srv, transport)
}

// reportStages attaches the per-transport stage breakdown of the run to
// the benchmark line: mean microseconds per stage, the stage sum, and
// the measured end-to-end served mean the sum should approximate.
func reportStages(b *testing.B, srv *priste.Server, transport string) {
	b.Helper()
	st := srv.Stats()
	var ts priste.TransportStats
	switch transport {
	case "http":
		ts = st.Transports.HTTP
	case "rpc":
		ts = st.Transports.RPC
	default:
		ts = st.Transports.Local
	}
	if ts.Steps == 0 {
		return
	}
	var sum float64
	for _, stage := range []string{"decode", "queue_wait", "commit_hit", "commit_miss", "wal_append", "encode"} {
		sg, ok := ts.Stages[stage]
		if !ok {
			continue
		}
		// Weight each stage by how many steps actually passed through it
		// (commit splits by cache hit/miss; wal_append only exists on
		// durable deployments), so the sum is per served step.
		contribution := sg.MeanMicros * float64(sg.Count) / float64(ts.Steps)
		sum += contribution
		b.ReportMetric(contribution, stage+"_us")
	}
	b.ReportMetric(sum, "stage_sum_us")
	b.ReportMetric(ts.StepMeanMicros, "e2e_us")
}

// benchStreamSteps drives the streaming ingest path: parallel
// goroutines each own one session and one StepStream, a receiver
// goroutine drains releases while the benchmark loop fire-and-forgets
// locations, and the tail is drained through CloseSend before the
// goroutine reports. One iteration is one streamed certified release.
func benchStreamSteps(b *testing.B, srv *priste.Server, transport string, cfg priste.ServerConfig, dial func() priste.APIClient) {
	var nextSession atomic.Int64
	m := cfg.GridW * cfg.GridH
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		client := dial()
		sc, ok := client.(priste.StreamClient)
		if !ok {
			b.Error("client does not implement StreamClient")
			return
		}
		ctx := context.Background()
		seed := nextSession.Add(1)
		info, err := client.CreateSession(ctx, priste.CreateSessionRequest{Seed: &seed})
		if err != nil {
			b.Error(err)
			return
		}
		st, err := sc.StreamSteps(ctx, info.ID, 0)
		if err != nil {
			b.Error(err)
			return
		}
		recvDone := make(chan error, 1)
		go func() {
			for {
				if _, err := st.Recv(); err != nil {
					if errors.Is(err, io.EOF) {
						recvDone <- nil
					} else {
						recvDone <- err
					}
					return
				}
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		for pb.Next() {
			if err := st.Send(rng.Intn(m)); err != nil {
				b.Error(err)
				return
			}
		}
		_ = st.CloseSend()
		if err := <-recvDone; err != nil {
			b.Error(err)
		}
		_ = st.Close()
	})
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "steps/sec")
	reportStages(b, srv, transport)
}

// BenchmarkServerStep measures HTTP/JSON serving-path throughput over
// the tuned default client transport (connection reuse sized to the
// benchmark's parallelism, compression off on the step path).
func BenchmarkServerStep(b *testing.B) {
	srv, cfg := benchServer(b)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	benchSteps(b, srv, "http", cfg, func() priste.APIClient {
		return priste.NewServerClient(ts.URL, nil)
	})
}

// BenchmarkServerStepStream measures windowed stream ingest over the
// binary RPC transport: fire-and-forget step frames with batched acks
// instead of one request/response round-trip per step.
func BenchmarkServerStepStream(b *testing.B) {
	srv, cfg := benchServer(b)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	rpcSrv := priste.NewRPCServer(srv)
	go func() { _ = rpcSrv.Serve(lis) }()
	defer rpcSrv.Close()
	benchStreamSteps(b, srv, "rpc", cfg, func() priste.APIClient {
		client, err := priste.DialRPC(lis.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { client.Close() })
		return client
	})
}

// BenchmarkServerStepStreamHTTP measures the HTTP stream client's
// pipelined micro-batches over POST /v1/sessions/{id}/stream.
func BenchmarkServerStepStreamHTTP(b *testing.B) {
	srv, cfg := benchServer(b)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	benchStreamSteps(b, srv, "http", cfg, func() priste.APIClient {
		return priste.NewServerClient(ts.URL, nil)
	})
}

// BenchmarkServerStepRPC is BenchmarkServerStep over the binary RPC
// transport: same server, same workload, persistent per-connection
// streams instead of per-request HTTP/JSON.
func BenchmarkServerStepRPC(b *testing.B) {
	srv, cfg := benchServer(b)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	rpcSrv := priste.NewRPCServer(srv)
	go func() { _ = rpcSrv.Serve(lis) }()
	defer rpcSrv.Close()
	benchSteps(b, srv, "rpc", cfg, func() priste.APIClient {
		client, err := priste.DialRPC(lis.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { client.Close() })
		return client
	})
}
