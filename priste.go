// Package priste is the public API of the PriSTE library, a from-scratch
// Go implementation of "PriSTE: From Location Privacy to Spatiotemporal
// Event Privacy" (Cao, Xiao, Xiong, Bai — ICDE 2019).
//
// PriSTE protects *spatiotemporal events* — Boolean combinations of
// (location, time) predicates such as "visited the hospital district some
// time this week" (PRESENCE) or "commuted from home to work this morning"
// (PATTERN) — while a user shares perturbed locations with an untrusted
// service through a location-privacy mechanism. The library provides:
//
//   - the grid map, Markov mobility model and planar-Laplace /
//     δ-location-set mechanisms the paper builds on;
//   - the two-possible-world quantifier that measures, in time linear in
//     the event length, how much ε-spatiotemporal event privacy a
//     mechanism provides (§III);
//   - the PriSTE release loop that calibrates a mechanism's budget until
//     the release conditions of Theorem IV.1 are certified for *every*
//     possible adversary initial belief (§IV), using a certified
//     branch-and-bound solver in place of the paper's CPLEX;
//   - an experiment harness regenerating the paper's evaluation
//     (internal/experiments, driven by cmd/experiments).
//
// # Quick start
//
//	g, _ := priste.NewGrid(10, 10, 1.0)             // 10×10 map, 1 km cells
//	chain, _ := priste.GaussianChain(g, 1.0)        // local mobility model
//	region, _ := priste.RegionRect(g, 0, 0, 2, 2)   // sensitive area
//	ev, _ := priste.NewPresence(region, 3, 7)       // visited during t∈[3,7]?
//	mech := priste.NewPlanarLaplace(g)               // geo-ind mechanism
//	fw, _ := priste.NewFramework(mech, priste.Homogeneous(chain),
//	    []priste.Event{ev}, priste.DefaultConfig(0.5, 1.0), rng)
//	for _, u := range trueTrajectory {
//	    step, _ := fw.Step(u)                        // certified release
//	    fmt.Println(step.Obs, step.Alpha)
//	}
//
// Timestamps are 0-based throughout. All probability objects are dense
// float64 structures from the internal mat package, re-exported here as
// Vector and Matrix.
package priste

import (
	"io"
	"net/http"

	"priste/internal/api"
	"priste/internal/attack"
	"priste/internal/certcache"
	"priste/internal/core"
	"priste/internal/event"
	"priste/internal/eventspec"
	"priste/internal/geolife"
	"priste/internal/grid"
	"priste/internal/hmm"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/mat"
	"priste/internal/qp"
	"priste/internal/ring"
	"priste/internal/router"
	"priste/internal/rpc"
	"priste/internal/server"
	"priste/internal/store"
	"priste/internal/trace"
	"priste/internal/world"
)

// Linear algebra.
type (
	// Vector is a dense probability/weight vector.
	Vector = mat.Vector
	// Matrix is a dense row-major matrix.
	Matrix = mat.Matrix
)

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return mat.NewVector(n) }

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return mat.NewMatrix(rows, cols) }

// Map and regions.
type (
	// Grid is a rectangular cell map; states are numbered row-major.
	Grid = grid.Grid
	// Region is a set of map states (the s ∈ {0,1}^m of the paper).
	Region = grid.Region
)

// NewGrid returns a w×h grid whose cells have the given edge length in
// user units (e.g. km).
func NewGrid(w, h int, cellSize float64) (*Grid, error) { return grid.New(w, h, cellSize) }

// NewRegion returns an empty region over m states.
func NewRegion(m int) *Region { return grid.NewRegion(m) }

// RegionOf returns the region containing exactly the given states.
func RegionOf(m int, states ...int) (*Region, error) { return grid.RegionOf(m, states...) }

// RegionRect returns the region of grid cells in the inclusive rectangle
// (x0,y0)-(x1,y1).
func RegionRect(g *Grid, x0, y0, x1, y1 int) (*Region, error) {
	return grid.RegionRect(g, x0, y0, x1, y1)
}

// Mobility models.
type (
	// Chain is a first-order Markov mobility model.
	Chain = markov.Chain
	// TrainOptions controls transition-matrix estimation.
	TrainOptions = markov.TrainOptions
)

// NewChain validates and wraps a row-stochastic transition matrix.
func NewChain(t *Matrix) (*Chain, error) { return markov.NewChain(t) }

// GaussianChain builds the synthetic mobility model of §V-A: transition
// probabilities proportional to a Gaussian kernel of scale sigma.
func GaussianChain(g *Grid, sigma float64) (*Chain, error) { return markov.GaussianChain(g, sigma) }

// TrainChain estimates a transition matrix from state trajectories
// (replacing the R "markovchain" training of §V-A).
func TrainChain(trajs [][]int, opt TrainOptions) (*Chain, error) { return markov.Train(trajs, opt) }

// UniformDistribution returns the uniform distribution over m states.
func UniformDistribution(m int) Vector { return markov.Uniform(m) }

// Events (Definitions II.1–II.3).
type (
	// Event is a protectable spatiotemporal event (PRESENCE or PATTERN).
	Event = event.Event
	// Presence is "the user appears in a region during a time window".
	Presence = event.Presence
	// Pattern is "the user passes through a sequence of regions".
	Pattern = event.Pattern
	// Expr is a raw Boolean expression over (location, time) predicates.
	Expr = event.Expr
)

// NewPresence returns the PRESENCE event for region during the inclusive
// 0-based window [start, end].
func NewPresence(region *Region, start, end int) (*Presence, error) {
	return event.NewPresence(region, start, end)
}

// NewPattern returns the PATTERN event visiting regions sequentially from
// 0-based timestamp start.
func NewPattern(regions []*Region, start int) (*Pattern, error) {
	return event.NewPattern(regions, start)
}

// NewSparsePresence returns a PRESENCE event over a non-consecutive set of
// timestamps (the §II-B generalisation).
func NewSparsePresence(region *Region, times []int) (*event.SparsePresence, error) {
	return event.NewSparsePresence(region, times)
}

// NewSparsePattern returns a PATTERN event constraining a non-consecutive
// set of timestamps; in-between timestamps are unconstrained.
func NewSparsePattern(times []int, regions []*Region) (*event.SparsePattern, error) {
	return event.NewSparsePattern(times, regions)
}

// NewGeneralPresence returns a PRESENCE event with a possibly different
// region at every timestamp.
func NewGeneralPresence(regions map[int]*Region) (*event.GeneralPresence, error) {
	return event.NewGeneralPresence(regions)
}

// CompileEvent translates a Boolean expression over (location, time)
// predicates (Definition II.1) into a protectable event over an m-state
// map: pure disjunctions become PRESENCE-like events, conjunctions of
// per-timestamp disjunctions become PATTERN-like events.
func CompileEvent(e *Expr, m int) (Event, error) { return event.CompileWithStates(e, m) }

// Pred returns the predicate expression u_t = state.
func Pred(t, state int) *Expr { return event.Pred(t, state) }

// And returns the conjunction of expressions.
func And(kids ...*Expr) *Expr { return event.And(kids...) }

// Or returns the disjunction of expressions.
func Or(kids ...*Expr) *Expr { return event.Or(kids...) }

// Not returns the negation of an expression.
func Not(x *Expr) *Expr { return event.Not(x) }

// Mechanisms (LPPMs).
type (
	// Mechanism is the stateful LPPM interface the release loop drives.
	Mechanism = lppm.Perturber
	// PlanarLaplace is the geo-indistinguishability mechanism of §IV-C.
	PlanarLaplace = lppm.PlanarLaplace
	// DeltaLocationSet is the δ-location-set mechanism of §IV-D.
	DeltaLocationSet = lppm.DeltaLocationSet
)

// NewPlanarLaplace returns a discretised planar Laplace mechanism on g.
func NewPlanarLaplace(g *Grid) *PlanarLaplace { return lppm.NewPlanarLaplace(g) }

// NewDeltaLocationSet returns a δ-location-set mechanism with initial
// belief pi.
func NewDeltaLocationSet(g *Grid, chain *Chain, pi Vector, delta float64) (*DeltaLocationSet, error) {
	return lppm.NewDeltaLocationSet(g, chain, pi, delta)
}

// NewUniformMechanism returns the fully-uninformative mechanism.
func NewUniformMechanism(m int) (Mechanism, error) { return lppm.NewUniform(m) }

// Quantification (§III).
type (
	// TransitionProvider supplies per-step transition matrices.
	TransitionProvider = world.TransitionProvider
	// QuantModel binds an event to a mobility model.
	QuantModel = world.Model
	// Quantifier is the streaming privacy-loss quantifier of Algorithm 2.
	Quantifier = world.Quantifier
	// ReleaseCheck holds the Theorem IV.1 vectors for one candidate.
	ReleaseCheck = qp.ReleaseCheck
	// ReleaseOptions tunes the condition solver.
	ReleaseOptions = qp.ReleaseOptions
	// ReleaseDecision is the certified outcome for one candidate.
	ReleaseDecision = qp.ReleaseDecision
	// KernelMode selects how transition matrices compile into step
	// kernels (auto / dense / sparse CSR / naive oracle); the paths are
	// bit-equivalent.
	KernelMode = world.KernelMode
	// QuantModelOptions tunes quantification-model compilation.
	QuantModelOptions = world.ModelOptions
	// KernelStats reports compiled kernels by path (sparse vs dense).
	KernelStats = world.KernelStats
	// SparseMatrix is the compressed-sparse-row kernel format.
	SparseMatrix = mat.CSR
)

// Kernel compilation modes.
const (
	KernelAuto   = world.KernelAuto
	KernelDense  = world.KernelDense
	KernelSparse = world.KernelSparse
	// KernelOracle forces the naive dense reference kernels — the
	// bit-identical oracle the adaptive paths are tested and benchmarked
	// against.
	KernelOracle = world.KernelOracle
)

// ShadowEta is the certified per-component relative error bound of the
// float32 shadow check path (world.ShadowEta): the margin by which
// qp.CheckReleaseShadow widens the Theorem IV.1 decision thresholds when
// deciding from shadow vectors.
const ShadowEta = world.ShadowEta

// Homogeneous wraps a time-homogeneous chain as a TransitionProvider.
func Homogeneous(c *Chain) TransitionProvider { return world.NewHomogeneous(c) }

// NewQuantModel precomputes the two-possible-world structures for an
// event under a mobility model.
func NewQuantModel(tp TransitionProvider, ev Event) (*QuantModel, error) {
	return world.NewModel(tp, ev)
}

// NewQuantModelWithOptions is NewQuantModel with explicit kernel
// compilation options.
func NewQuantModelWithOptions(tp TransitionProvider, ev Event, opts QuantModelOptions) (*QuantModel, error) {
	return world.NewModelWithOptions(tp, ev, opts)
}

// NewQuantifier returns a fresh streaming quantifier at time 0.
func NewQuantifier(md *QuantModel) *Quantifier { return world.NewQuantifier(md) }

// EventPrior computes Pr(EVENT) under an initial distribution
// (Lemma III.1).
func EventPrior(md *QuantModel, pi Vector) (float64, error) { return md.Prior(pi) }

// PrivacyLoss returns the realised ε of Definition II.4 for a fixed
// initial probability and a sequence of emission columns.
func PrivacyLoss(md *QuantModel, pi Vector, emissions []Vector) (float64, error) {
	return world.PrivacyLoss(md, pi, emissions)
}

// CheckRelease certifies the Theorem IV.1 conditions for one candidate
// observation over all initial probabilities.
func CheckRelease(chk ReleaseCheck, opt ReleaseOptions) (ReleaseDecision, error) {
	return qp.CheckRelease(chk, opt)
}

// Release loop (§IV).
type (
	// Framework is the PriSTE release loop (Algorithms 1–3).
	Framework = core.Framework
	// Config tunes the release loop.
	Config = core.Config
	// StepResult records one released timestamp.
	StepResult = core.StepResult
)

// DefaultConfig returns the paper's defaults: halving budget decay and a
// one-second conservative-release threshold.
func DefaultConfig(epsilon, alpha float64) Config { return core.DefaultConfig(epsilon, alpha) }

// Rand is the random source a session draws candidate observations
// from; both math/rand and math/rand/v2 generators satisfy it. Durable
// sessions use SessionRNG, whose state is binary-marshalable.
type Rand = core.Rand

// SessionRNG is a binary-marshalable PCG session RNG: persisted sessions
// resume the exact candidate sequence of an uninterrupted run.
type SessionRNG = core.SessionRNG

// NewSessionRNG returns a session RNG deterministically derived from
// seed.
func NewSessionRNG(seed int64) *SessionRNG { return core.NewSessionRNG(seed) }

// NewFramework builds a release loop protecting the given events.
func NewFramework(mech Mechanism, tp TransitionProvider, events []Event, cfg Config, rng Rand) (*Framework, error) {
	return core.New(mech, tp, events, cfg, rng)
}

// Plan/state split: a Plan is the immutable, shareable half of the engine
// (validated config, compiled world models, uniform fallback, and — for
// history-independent mechanisms — one shared emission table and an
// optional certified-release cache); Plan.NewSession mints lightweight
// per-session Frameworks over it.
type (
	// Plan is the immutable compiled engine shared by many sessions.
	Plan = core.Plan
	// MechanismFactory builds one per-session mechanism instance.
	MechanismFactory = core.MechanismFactory
	// CertCache is the sharded, bounded-LRU certified-release cache.
	CertCache = certcache.Cache
	// CertCacheKey identifies one cached release check.
	CertCacheKey = certcache.Key
	// CertCacheStats is a point-in-time view of the cache counters.
	CertCacheStats = certcache.Stats
)

// NewPlan compiles the world models for the given events once, for any
// number of sessions (Plan.NewSession).
func NewPlan(mf MechanismFactory, tp TransitionProvider, events []Event, cfg Config) (*Plan, error) {
	return core.NewPlan(mf, tp, events, cfg)
}

// SharedMechanism adapts one history-independent mechanism instance into
// a factory handing it to every session of a plan.
func SharedMechanism(mech Mechanism) MechanismFactory { return core.SharedMechanism(mech) }

// NewCertCache returns a certified-release cache bounded to roughly
// capacity decisions; attach it with Plan.EnableCache.
func NewCertCache(capacity int) *CertCache { return certcache.New(capacity) }

// ParseEventSpec parses a compact "LO-HI@START-END" PRESENCE spec (the
// syntax of cmd/priste and the pristed API) over an m-state map. A
// non-positive horizon disables the window bound.
func ParseEventSpec(spec string, m, horizon int) (Event, error) {
	return eventspec.Parse(spec, m, horizon)
}

// Serving (cmd/pristed): a concurrent multi-user release service managing
// one privacy session — a Framework with its own RNG, mechanism and event
// set — per user. The service surface is the versioned, transport-neutral
// internal/api package (APIService/APIClient below); the HTTP/JSON
// handlers, the binary RPC transport and the pristectl CLI are thin
// codecs over it.
type (
	// Server is the multi-user release service; it implements APIService.
	Server = server.Server
	// ServerConfig tunes the service: world model, privacy defaults and
	// limits (session cap, idle TTL, worker pool, queue depth).
	ServerConfig = server.Config
	// ServerClient is the typed client for the pristed HTTP transport.
	ServerClient = server.Client
	// SessionInfo is a session's public state.
	SessionInfo = api.SessionInfo
	// CreateSessionRequest opens a per-user session.
	CreateSessionRequest = api.CreateSessionRequest
	// StepResponse is one certified release from the service API.
	StepResponse = api.StepResponse
	// BatchStepItem is one entry of the multi-user batch endpoint.
	BatchStepItem = api.BatchStepItem
	// ServerStats is the /statsz counter snapshot.
	ServerStats = api.Stats
	// TransportStats is one transport's serving-latency and per-stage
	// breakdown inside ServerStats.
	TransportStats = api.TransportStats
)

// Versioned API core: the transport-neutral service and client
// interfaces plus the canonical error model every transport round-trips.
type (
	// APIService is the transport-neutral service surface *Server
	// implements; every front-end (HTTP, RPC, CLI) drives exactly it.
	APIService = api.Service
	// APIClient is the transport-neutral typed client interface; the
	// HTTP ServerClient and the binary RPCClient both satisfy it.
	APIClient = api.Client
	// APIError is the typed error every transport round-trips; use
	// errors.Is against the server sentinels or inspect its Code.
	APIError = api.Error
	// APICode is the canonical error-code enum (not_found,
	// already_exists, session_closed, resource_exhausted, ...).
	APICode = api.Code
	// SessionPage is one page of the paginated session list.
	SessionPage = api.SessionPage
	// SessionExport is a session's complete migratable state: the
	// payload of the export/import endpoints that hand a session from
	// one pristed instance to another.
	SessionExport = api.SessionExport
	// StepStream is a windowed, order-preserving step pipe into one
	// session: fire-and-forget Send, FIFO Recv of certified releases,
	// backpressure when the in-flight window is exhausted.
	StepStream = api.StepStream
	// StreamClient is the client extension for streaming ingest; both
	// the HTTP ServerClient and the binary RPCClient implement it.
	StreamClient = api.StreamClient
)

// RPC transport: a length-prefixed binary frame protocol over TCP with
// persistent per-connection session streams — the low-overhead path for
// high-frequency stepping (see internal/rpc for the framing).
type (
	// RPCServer serves the binary RPC protocol over any APIService.
	RPCServer = rpc.Server
	// RPCClient is the binary RPC client; it implements APIClient.
	RPCClient = rpc.Client
)

// DefaultServerConfig returns the pristed defaults (10×10 map,
// geo-indistinguishability, ε=0.5).
func DefaultServerConfig() ServerConfig { return server.DefaultConfig() }

// NewServer starts a release service (worker pool and idle-session
// janitor included); release it with Close.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewServerClient returns a typed client for the pristed instance at
// baseURL; httpClient nil uses http.DefaultClient.
func NewServerClient(baseURL string, httpClient *http.Client) *ServerClient {
	return server.NewClient(baseURL, httpClient)
}

// NewRPCServer returns a binary RPC front-end over a release service;
// serve it with Serve(net.Listener). The per-transport request and
// step-stage observers are pre-wired into the service's /statsz and
// /metricsz instrumentation.
func NewRPCServer(srv *Server) *RPCServer {
	rs := rpc.NewServer(srv)
	rs.Observe = srv.ObserveRPC
	rs.ObserveStep = srv.ObserveRPCStep
	rs.OnStreamOpen = srv.ObserveStreamOpen
	rs.OnStreamClose = srv.ObserveStreamClose
	rs.ObserveStreamWindow = srv.ObserveStreamWindow
	rs.ObserveStreamAcks = srv.ObserveStreamAcks
	return rs
}

// DialRPC returns a binary RPC client for the pristed RPC listener at
// addr (connected lazily on first use).
func DialRPC(addr string) (*RPCClient, error) { return rpc.Dial(addr) }

// Fleet (cmd/pristerouter): a stateless front door that shards sessions
// across many pristed backends with a consistent-hash ring and serves
// the same versioned API a single pristed does. Ring changes re-home
// only the sessions in the moved hash ranges through the export→import
// migration path, fingerprint-verified, with in-flight steps parked per
// session during each handoff.
type (
	// Ring is the immutable consistent-hash ring (virtual nodes,
	// deterministic placement, minimal movement on membership change).
	Ring = ring.Ring
	// Router is the fleet session router; it implements APIService over
	// a set of RouterBackends.
	Router = router.Router
	// RouterConfig tunes the router: backends, ring width, health-probe
	// hysteresis and migration/call timeouts.
	RouterConfig = router.Config
	// RouterBackend names one pristed backend and the APIClient to
	// reach it.
	RouterBackend = router.Backend
	// RebalanceReport summarises one drain/re-home pass.
	RebalanceReport = router.RebalanceReport
	// FleetStats is the router's /statsz fleet section: ring epoch,
	// per-backend health/placement and the migration counters.
	FleetStats = api.FleetStats
)

// NewRing returns a consistent-hash ring over the named members with
// vnodes virtual nodes each (vnodes <= 0 uses the default, 128).
func NewRing(vnodes int, members ...string) *Ring { return ring.New(vnodes, members...) }

// NewRouter starts a fleet router (health-probe loop included) over the
// configured backends; release it with Shutdown. Its Handler serves the
// pristed HTTP surface plus the /v1/fleet admin routes, and it can sit
// behind an RPCServer like any APIService.
func NewRouter(cfg RouterConfig) (*Router, error) { return router.New(cfg) }

// Durability: sessions survive restarts through a pluggable store — an
// append-only per-session WAL of committed release tags plus periodic
// snapshots — replayed deterministically through the shared compiled
// Plan on startup (see Plan.Restore and ServerConfig.Store).
type (
	// Store is the session durability backend.
	Store = store.Store
	// FileStore is the default file-backed store (one WAL + snapshot per
	// session under a directory).
	FileStore = store.FileStore
	// NullStore is the in-memory no-op store.
	NullStore = store.Null
	// SessionSnapshot is a complete serialisable image of one session's
	// mutable engine state.
	SessionSnapshot = core.Snapshot
	// ReleaseTag is one committed (budget, observation) release pair.
	ReleaseTag = core.ReleaseTag
	// StoreStats counts store activity for /statsz.
	StoreStats = store.Stats
)

// OpenStore opens (creating if needed) a file-backed session store
// rooted at dir. With fsync true every WAL append is synced to stable
// storage before the step is acknowledged.
func OpenStore(dir string, fsync bool) (*FileStore, error) { return store.Open(dir, fsync) }

// Inference extras.
type (
	// HMM bundles a chain, an initial belief and an emission model for
	// forward-backward inference (used by adversary simulations).
	HMM = hmm.Model
	// EmissionModel supplies observation likelihood columns.
	EmissionModel = hmm.EmissionModel
)

// NewHMM builds an HMM from a chain, an initial distribution and an
// emission matrix.
func NewHMM(c *Chain, pi Vector, emission *Matrix) (*HMM, error) {
	em, err := hmm.NewMatrixEmission(emission)
	if err != nil {
		return nil, err
	}
	return hmm.NewModel(c, pi, em)
}

// Mobility data.
type (
	// MobilityDataset is a corpus of synthetic Geolife-like traces.
	MobilityDataset = geolife.Dataset
	// MobilityConfig controls the trace generator.
	MobilityConfig = geolife.Config
	// RawTrajectory is a continuous (x, y, t) trace.
	RawTrajectory = trace.Raw
	// TracePoint is one raw trajectory record.
	TracePoint = trace.Point
)

// GenerateMobility synthesises Geolife-like commute traces (the paper's
// real-data substitute; see DESIGN.md).
func GenerateMobility(cfg MobilityConfig) (*MobilityDataset, error) { return geolife.Generate(cfg) }

// Discretize maps a raw trajectory onto grid states.
func Discretize(g *Grid, raw RawTrajectory) []int { return trace.Discretize(g, raw) }

// WriteStates writes state trajectories as CSV, one per line.
func WriteStates(w io.Writer, trajs [][]int) error { return trace.WriteStates(w, trajs) }

// ReadStates parses CSV state trajectories.
func ReadStates(r io.Reader) ([][]int, error) { return trace.ReadStates(r) }

// EmpiricalInitial estimates an initial distribution from trajectory
// starting states.
func EmpiricalInitial(trajs [][]int, m int, smoothing float64) (Vector, error) {
	return markov.EmpiricalInitial(trajs, m, smoothing)
}

// Adversary simulation.
type (
	// Adversary is a Bayesian observer knowing the mobility model and the
	// mechanism, used to demonstrate the attacks PriSTE defends against.
	Adversary = attack.Adversary
	// EventInference is the outcome of the event-decision attack.
	EventInference = attack.EventInference
	// LocationInference is the outcome of the localisation attack.
	LocationInference = attack.LocationInference
)

// NewAdversary builds an attack simulator; the grid may be nil when
// distance metrics are not needed.
func NewAdversary(chain *Chain, pi Vector, g *Grid) (*Adversary, error) {
	return attack.NewAdversary(chain, pi, g)
}

// EventPosterior returns the adversary's belief trajectory
// Pr(EVENT | o₀..o_t) for each observation prefix.
func EventPosterior(md *QuantModel, pi Vector, emissions []Vector) ([]float64, error) {
	return world.EventPosterior(md, pi, emissions)
}

// Real Geolife data support (the repository ships a synthetic substitute;
// these parse the actual dataset when available).
type (
	// PLTPoint is one record of a Geolife .plt file.
	PLTPoint = geolife.PLTPoint
	// ResampleOptions controls PLT-to-trajectory conversion.
	ResampleOptions = geolife.ResampleOptions
)

// ParsePLT reads one Geolife .plt file.
func ParsePLT(r io.Reader) ([]PLTPoint, error) { return geolife.ParsePLT(r) }

// ResamplePLT converts parsed records into fixed-interval km trajectories.
func ResamplePLT(points []PLTPoint, opt ResampleOptions) ([]RawTrajectory, error) {
	trajs, _, err := geolife.Resample(points, opt)
	return trajs, err
}

// DiscretizePLT maps km trajectories onto an automatically-sized grid.
func DiscretizePLT(trajs []RawTrajectory, cellKm float64, maxSide int) ([][]int, *Grid, error) {
	return geolife.DiscretizeAll(trajs, cellKm, maxSide)
}
