// Command tracegen generates mobility trajectories: either Gaussian-kernel
// synthetic walks (§V-A) or Geolife-like commute traces (the paper's
// real-data substitute), written as CSV state trajectories consumable by
// cmd/priste and the training APIs.
//
// Usage:
//
//	go run ./cmd/tracegen -kind synth -grid 10 -T 50 -n 100 > traj.csv
//	go run ./cmd/tracegen -kind geolife -grid 20 -days 60 > days.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"priste"
)

func main() {
	var (
		kind  = flag.String("kind", "synth", `"synth" or "geolife"`)
		gridN = flag.Int("grid", 10, "map side length")
		cell  = flag.Float64("cell", 1.0, "cell edge length (km)")
		sigma = flag.Float64("sigma", 1.0, "synth: Gaussian transition scale")
		T     = flag.Int("T", 50, "synth: steps per trajectory")
		n     = flag.Int("n", 10, "synth: number of trajectories")
		days  = flag.Int("days", 30, "geolife: number of days")
		steps = flag.Int("steps", 48, "geolife: records per day")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	g, err := priste.NewGrid(*gridN, *gridN, *cell)
	check(err)

	var trajs [][]int
	switch *kind {
	case "synth":
		chain, err := priste.GaussianChain(g, *sigma)
		check(err)
		rng := rand.New(rand.NewSource(*seed))
		pi := priste.UniformDistribution(g.States())
		for i := 0; i < *n; i++ {
			trajs = append(trajs, chain.SamplePath(rng, pi, *T))
		}
	case "geolife":
		ds, err := priste.GenerateMobility(priste.MobilityConfig{
			Grid: g, Days: *days, StepsPerDay: *steps, Seed: *seed,
		})
		check(err)
		trajs = ds.States
		fmt.Fprintf(os.Stderr, "home=%d work=%d\n", ds.Home, ds.Work)
	default:
		check(fmt.Errorf("unknown kind %q", *kind))
	}
	check(priste.WriteStates(os.Stdout, trajs))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
