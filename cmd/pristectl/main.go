// Command pristectl is the CLI front-end of the pristed API: a third
// transport consumer next to the HTTP and RPC clients, written entirely
// against the transport-neutral api.Client interface — the same
// interface the conformance tests run — so every subcommand works
// identically over HTTP/JSON (-http) and the binary RPC protocol
// (-rpc).
//
// Usage:
//
//	pristectl [-http http://127.0.0.1:8377 | -rpc 127.0.0.1:8378] <command> [args]
//
// Commands:
//
//	create [-id ID] [-seed N] [-eps E] [-alpha A] [-mech M] [-delta D] [-event SPEC]...
//	get ID                 session state
//	step ID LOC            release one location
//	stream [-window W] [-n N -seed S -states M] ID
//	                       pump a step stream: locations from stdin
//	                       (whitespace-separated), or -n random-walk steps;
//	                       certified releases print as JSON lines in order
//	watch [-n N] ID        follow the session's SSE release stream (HTTP only)
//	delete ID              close a session
//	list [-limit N] [-cursor C]
//	export ID              write the session's migratable state to stdout
//	import                 read an exported session from stdin and register it
//	stats [-stages|-kernels]  service counters (-stages: per-transport stage
//	                       table; -kernels: kernel/shadow dispatch table)
//	health                 liveness probe
//	fleet status           ring membership, health and per-backend session
//	                       counts (target must be a pristerouter)
//	fleet rebalance [-undrain] BACKEND
//	                       drain a backend's sessions onto the rest of the
//	                       fleet (or readmit it with -undrain); HTTP only
//
// Every command prints its response as JSON on stdout, so a migration is
// a shell pipeline:
//
//	pristectl -http http://a:8377 export alice | pristectl -http http://b:8377 import
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"priste/internal/api"
	"priste/internal/eventspec"
	"priste/internal/rpc"
	"priste/internal/server"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pristectl: "+format+"\n", args...)
	os.Exit(1)
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("%v", err)
	}
}

func main() {
	httpBase := flag.String("http", "http://127.0.0.1:8377", "pristed HTTP base URL")
	rpcAddr := flag.String("rpc", "", "pristed RPC address (overrides -http when set)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-command timeout")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pristectl [-http URL | -rpc ADDR] <create|get|step|stream|watch|delete|list|export|import|stats|health|fleet> [args]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	// One api.Client, two transports: the subcommands cannot tell them
	// apart.
	var client api.Client
	if *rpcAddr != "" {
		c, err := rpc.Dial(*rpcAddr)
		if err != nil {
			fatalf("%v", err)
		}
		defer c.Close()
		client = c
	} else {
		client = server.NewClient(*httpBase, nil)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "create":
		runCreate(ctx, client, args)
	case "get":
		info, err := client.Session(ctx, oneArg(cmd, args))
		exit(info, err)
	case "step":
		if len(args) != 2 {
			fatalf("usage: step ID LOC")
		}
		loc, err := strconv.Atoi(args[1])
		if err != nil {
			fatalf("bad location %q", args[1])
		}
		res, err := client.Step(ctx, args[0], loc)
		exit(res, err)
	case "stream":
		runStream(ctx, client, args)
	case "watch":
		if *rpcAddr != "" {
			fatalf("watch follows the SSE release stream and needs the HTTP transport (-http)")
		}
		runWatch(ctx, *httpBase, args)
	case "delete":
		if err := client.DeleteSession(ctx, oneArg(cmd, args)); err != nil {
			fatalf("%v", err)
		}
		printJSON(map[string]string{"deleted": args[0]})
	case "list":
		runList(ctx, client, args)
	case "export":
		exp, err := client.ExportSession(ctx, oneArg(cmd, args))
		exit(exp, err)
	case "import":
		var exp api.SessionExport
		if err := json.NewDecoder(os.Stdin).Decode(&exp); err != nil {
			fatalf("decode export from stdin: %v", err)
		}
		info, err := client.ImportSession(ctx, exp)
		exit(info, err)
	case "stats":
		runStats(ctx, client, args)
	case "fleet":
		runFleet(ctx, client, *httpBase, *rpcAddr, args)
	case "health":
		if err := client.Health(ctx); err != nil {
			fatalf("%v", err)
		}
		printJSON(map[string]string{"status": "ok"})
	default:
		fatalf("unknown command %q", cmd)
	}
}

func oneArg(cmd string, args []string) string {
	if len(args) != 1 {
		fatalf("usage: %s ID", cmd)
	}
	return args[0]
}

func exit(v any, err error) {
	if err != nil {
		fatalf("%v", err)
	}
	printJSON(v)
}

func runCreate(ctx context.Context, client api.Client, args []string) {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	var events eventspec.ListFlag
	id := fs.String("id", "", "session id (random when empty)")
	seed := fs.Int64("seed", 0, "session RNG seed; unset draws a random one")
	eps := fs.Float64("eps", 0, "epsilon (0 = server default)")
	alpha := fs.Float64("alpha", 0, "initial budget (0 = server default)")
	mech := fs.String("mech", "", "mechanism (laplace or delta; empty = server default)")
	delta := fs.Float64("delta", -1, "delta-location-set parameter; negative = server default")
	fs.Var(&events, "event", `protected-event spec "LO-HI@START-END" (repeatable)`)
	_ = fs.Parse(args)

	req := api.CreateSessionRequest{
		ID:        *id,
		Epsilon:   *eps,
		Alpha:     *alpha,
		Mechanism: *mech,
		Events:    events,
	}
	seedSet := false
	fs.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
	if seedSet {
		req.Seed = seed
	}
	if *delta >= 0 {
		req.Delta = delta
	}
	info, err := client.CreateSession(ctx, req)
	exit(info, err)
}

func runStats(ctx context.Context, client api.Client, args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	stages := fs.Bool("stages", false, "render the per-transport step-stage breakdown as a table instead of JSON")
	kernels := fs.Bool("kernels", false, "render the compiled-kernel and shadow-check summary as a table instead of JSON")
	_ = fs.Parse(args)
	st, err := client.Stats(ctx)
	if err != nil {
		fatalf("%v", err)
	}
	if *kernels {
		p, pool := st.Plans, st.Pool
		// Rows render through one tabwriter so the METRIC column is
		// sized to the longest counter name present — the pool counters
		// (pool_parallel_dispatch, …) outgrow the pad width the old
		// fixed-width rendering assumed, which skewed every VALUE after
		// the first long name.
		rows := []struct {
			name  string
			value string
		}{
			{"dense_kernels", fmt.Sprintf("%d", p.DenseKernels)},
			{"sparse_kernels", fmt.Sprintf("%d", p.SparseKernels)},
			{"kernel_density", fmt.Sprintf("%.4f", p.KernelDensity)},
			{"blocked_products", fmt.Sprintf("%d", p.BlockedKernels)},
			{"banded_products", fmt.Sprintf("%d", p.BandedKernels)},
			{"shadow_checks", fmt.Sprintf("%d", p.ShadowChecks)},
			{"shadow_fallbacks", fmt.Sprintf("%d", p.ShadowFallbacks)},
		}
		if p.ShadowChecks > 0 {
			rows = append(rows, struct{ name, value string }{
				"shadow_decided_rate",
				fmt.Sprintf("%.4f", 1-float64(p.ShadowFallbacks)/float64(p.ShadowChecks)),
			})
		}
		rows = append(rows,
			struct{ name, value string }{"pool_parallelism", fmt.Sprintf("%d", pool.Parallelism)},
			struct{ name, value string }{"pool_workers", fmt.Sprintf("%d", pool.Workers)},
			struct{ name, value string }{"pool_busy", fmt.Sprintf("%d", pool.Busy)},
			struct{ name, value string }{"pool_occupancy", fmt.Sprintf("%.4f", pool.Occupancy)},
			struct{ name, value string }{"pool_external_load", fmt.Sprintf("%d", pool.External)},
			struct{ name, value string }{"pool_parallel_dispatch", fmt.Sprintf("%d", pool.ParallelDispatch)},
			struct{ name, value string }{"pool_serial_dispatch", fmt.Sprintf("%d", pool.SerialDispatch)},
			struct{ name, value string }{"pool_steals", fmt.Sprintf("%d", pool.Steals)},
		)
		tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "METRIC\tVALUE")
		for _, r := range rows {
			fmt.Fprintf(tw, "%s\t%s\n", r.name, r.value)
		}
		if err := tw.Flush(); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if !*stages {
		printJSON(st)
		return
	}
	// Stage order mirrors a step's path through the server; a transport
	// with no served steps is skipped.
	order := []string{"decode", "queue_wait", "commit_hit", "commit_miss", "wal_append", "encode"}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TRANSPORT\tSTAGE\tCOUNT\tMEAN_US\tP99_US")
	for _, tr := range []struct {
		name string
		ts   api.TransportStats
	}{{"http", st.Transports.HTTP}, {"rpc", st.Transports.RPC}, {"local", st.Transports.Local}} {
		if tr.ts.Steps == 0 && len(tr.ts.Stages) == 0 {
			continue
		}
		if tr.ts.Steps > 0 {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.1f\n",
				tr.name, "(served e2e)", tr.ts.Steps, tr.ts.StepMeanMicros, tr.ts.StepP99Micros)
		}
		for _, name := range order {
			sg, ok := tr.ts.Stages[name]
			if !ok {
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.1f\n", tr.name, name, sg.Count, sg.MeanMicros, sg.P99Micros)
		}
	}
	if err := tw.Flush(); err != nil {
		fatalf("%v", err)
	}
}

// runStream pumps a step stream into one session: Send on one
// goroutine, Recv on this one, so the in-flight window stays full. With
// -n it drives a seeded random walk (deterministic, for smoke tests);
// otherwise it reads whitespace-separated locations from stdin. Each
// certified release prints as one JSON line, in step order.
func runStream(ctx context.Context, client api.Client, args []string) {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	window := fs.Int("window", 0, "in-flight step window (0 = server default)")
	n := fs.Int("n", 0, "drive N seeded random-walk steps instead of reading locations from stdin")
	seed := fs.Int64("seed", 1, "random-walk RNG seed (with -n)")
	states := fs.Int("states", 100, "random-walk location space size (with -n)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("usage: stream [-window W] [-n N -seed S -states M] ID")
	}
	sc, ok := client.(api.StreamClient)
	if !ok {
		fatalf("transport does not support step streams")
	}
	st, err := sc.StreamSteps(ctx, fs.Arg(0), *window)
	if err != nil {
		fatalf("%v", err)
	}
	defer st.Close()

	sendErr := make(chan error, 1)
	go func() {
		sendErr <- pumpSteps(st, *n, *seed, *states)
		_ = st.CloseSend()
	}()

	enc := json.NewEncoder(os.Stdout)
	for {
		resp, err := st.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fatalf("%v", err)
		}
		if err := enc.Encode(resp); err != nil {
			fatalf("%v", err)
		}
	}
	if err := <-sendErr; err != nil {
		fatalf("%v", err)
	}
}

// pumpSteps feeds the stream's input side: a seeded random walk with
// -n, stdin locations otherwise.
func pumpSteps(st api.StepStream, n int, seed int64, states int) error {
	if n > 0 {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			if err := st.Send(rng.Intn(states)); err != nil {
				return err
			}
		}
		return nil
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		loc, err := strconv.Atoi(sc.Text())
		if err != nil {
			return fmt.Errorf("bad location %q", sc.Text())
		}
		if err := st.Send(loc); err != nil {
			return err
		}
	}
	return sc.Err()
}

// runWatch follows a session's SSE release stream (GET
// /v1/sessions/{id}/stream), printing each release's JSON payload as
// one line. -n exits after that many releases; otherwise it follows
// until the stream ends (session deleted, subscriber lagged) or the
// -timeout expires.
func runWatch(ctx context.Context, base string, args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	n := fs.Int("n", 0, "exit after N releases (0 = follow until the stream ends)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("usage: watch [-n N] ID")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/sessions/"+url.PathEscape(fs.Arg(0))+"/stream", nil)
	if err != nil {
		fatalf("%v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatalf("stream: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	// Minimal SSE consumer: accumulate event/data lines, dispatch on the
	// blank separator. The server sends single-line data payloads.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event, data string
	count := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			switch event {
			case "release":
				fmt.Println(data)
				count++
				if *n > 0 && count >= *n {
					return
				}
			case "end":
				fmt.Fprintln(os.Stderr, "pristectl: stream ended: "+data)
				return
			}
			event, data = "", ""
			continue
		}
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("%v", err)
	}
}

// runFleet drives a pristerouter's fleet surface: `fleet status` renders
// the ring membership table from the router's stats fleet section (any
// transport), `fleet rebalance [-undrain] NAME` posts to the router's
// /v1/fleet/rebalance admin route (HTTP only, like watch).
func runFleet(ctx context.Context, client api.Client, httpBase, rpcAddr string, args []string) {
	if len(args) < 1 {
		fatalf("usage: fleet <status|rebalance> [args]")
	}
	switch sub, rest := args[0], args[1:]; sub {
	case "status":
		st, err := client.Stats(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		fleet := st.Fleet
		if fleet == nil {
			fatalf("no fleet section in stats — is the target a pristerouter?")
		}
		tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "BACKEND\tHEALTHY\tIN_RING\tDRAINING\tSESSIONS\tROUTES")
		for _, m := range fleet.Members {
			fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%d\t%d\n",
				m.Name, m.Healthy, m.InRing, m.Draining, m.Sessions, m.Routes)
		}
		fmt.Fprintf(tw, "\nepoch\t%d\nvnodes\t%d\nmigrations\t%d ok / %d failed (%d started)\nmisroute_retries\t%d\nhealth_transitions\t%d\n",
			fleet.Epoch, fleet.VirtualNodes,
			fleet.MigrationsCompleted, fleet.MigrationsFailed, fleet.MigrationsStarted,
			fleet.MisrouteRetries, fleet.HealthTransitions)
		if err := tw.Flush(); err != nil {
			fatalf("%v", err)
		}
	case "rebalance":
		if rpcAddr != "" {
			fatalf("fleet rebalance posts to the router's admin route and needs the HTTP transport (-http)")
		}
		fs := flag.NewFlagSet("fleet rebalance", flag.ExitOnError)
		undrain := fs.Bool("undrain", false, "readmit the backend (reverse a drain) instead of draining it")
		_ = fs.Parse(rest)
		if fs.NArg() != 1 {
			fatalf("usage: fleet rebalance [-undrain] BACKEND")
		}
		body, err := json.Marshal(map[string]any{"backend": fs.Arg(0), "undrain": *undrain})
		if err != nil {
			fatalf("%v", err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			httpBase+"/v1/fleet/rebalance", strings.NewReader(string(body)))
		if err != nil {
			fatalf("%v", err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fatalf("%v", err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if resp.StatusCode != http.StatusOK {
			fatalf("rebalance: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
		}
		var rep any
		if err := json.Unmarshal(raw, &rep); err != nil {
			fatalf("%v", err)
		}
		printJSON(rep)
	default:
		fatalf("unknown fleet subcommand %q (want status or rebalance)", sub)
	}
}

func runList(ctx context.Context, client api.Client, args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	limit := fs.Int("limit", 0, "page size (0 = server default)")
	cursor := fs.String("cursor", "", "resume cursor from the previous page")
	_ = fs.Parse(args)
	page, err := client.ListSessions(ctx, api.ListSessionsRequest{Limit: *limit, Cursor: *cursor})
	exit(page, err)
}
