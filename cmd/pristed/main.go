// Command pristed is the PriSTE release daemon: a long-lived service
// managing many independent per-user privacy sessions, each a full
// PriSTE release loop (core.Framework) with its own RNG, mechanism and
// protected-event set. Steps from different users run concurrently on a
// worker pool; each session stays single-writer with FIFO ordering and
// bounded-queue backpressure. One server serves two transports over the
// same versioned API (internal/api): HTTP/JSON on -addr and, with
// -rpc-addr set, the length-prefixed binary RPC protocol (internal/rpc)
// whose persistent per-connection streams skip per-request HTTP/JSON
// overhead on the hot step path.
//
// Usage:
//
//	pristed [-addr :8377] [-rpc-addr :8378] [-grid 10] [-cell 1.0] \
//	    [-sigma 1.0] [-eps 0.5] [-alpha 1.0] [-delta -1] [-event "0-9@3-7"]... \
//	    [-sparse-cutoff 0] [-kernel auto] [-shadow] \
//	    [-max-sessions 4096] [-session-ttl 15m] [-workers 0] [-queue 64] \
//	    [-cert-cache 65536] \
//	    [-store-dir /var/lib/pristed] [-fsync] [-snapshot-every 256] \
//	    [-log-format text] [-log-level info] [-slow-step 500ms] \
//	    [-sched-affinity 8] [-drain-batch 64] [-stream-buffer 256] \
//	    [-pprof-addr ""]
//
// With -store-dir set, every committed release is journaled to a
// per-session write-ahead log before it is acknowledged, WALs are
// compacted into snapshots every -snapshot-every steps, and a restarted
// daemon rehydrates all surviving sessions (and the certified-release
// cache) from the directory. -fsync additionally syncs each append to
// stable storage. On SIGTERM the daemon drains pending steps, flushes
// final snapshots and only then exits.
//
// HTTP API (the RPC transport carries the same surface; see
// internal/rpc for the framing):
//
//	POST   /v1/sessions             {"seed":1,"events":["0-9@3-7"]}
//	GET    /v1/sessions             list sessions (limit/cursor)
//	POST   /v1/sessions/{id}/step   {"loc":42}
//	POST   /v1/sessions/{id}/stream {"locs":[42,43,...]} windowed stream ingest
//	GET    /v1/sessions/{id}/stream SSE push stream of certified releases
//	POST   /v1/step                 {"steps":[{"session_id":"..","loc":42},...]}
//	GET    /v1/sessions/{id}        session state
//	DELETE /v1/sessions/{id}        close a session
//	GET    /v1/sessions/{id}/export export for migration
//	POST   /v1/sessions/import      import a migrated session
//	GET    /healthz                 liveness (503 while draining)
//	GET    /statsz                  counters (sessions, steps, latency, transports)
//	GET    /metricsz                Prometheus-text metrics
//
// Observability: structured logs go to stderr as -log-format text or
// json at -log-level; every request carries a trace ID (the
// X-Priste-Trace HTTP header / the RPC frame's trace field, generated
// server-side when absent) that appears in slow-step warnings (steps
// slower than -slow-step). -pprof-addr serves net/http/pprof on a
// separate listener kept off the public API address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"priste/internal/eventspec"
	"priste/internal/obs"
	"priste/internal/rpc"
	"priste/internal/server"
	"priste/internal/store"
)

func main() {
	var events eventspec.ListFlag
	var (
		addr        = flag.String("addr", ":8377", "HTTP listen address")
		rpcAddr     = flag.String("rpc-addr", "", "binary RPC listen address (e.g. :8378); empty disables the RPC transport")
		gridN       = flag.Int("grid", 10, "map side length")
		cell        = flag.Float64("cell", 1.0, "cell edge length (km)")
		sigma       = flag.Float64("sigma", 1.0, "mobility Gaussian scale")
		eps         = flag.Float64("eps", 0.5, "default epsilon-spatiotemporal event privacy")
		alpha       = flag.Float64("alpha", 1.0, "default initial PLM budget (1/km)")
		delta       = flag.Float64("delta", -1, "default delta-location-set parameter; negative = plain geo-ind")
		qpTimeout   = flag.Duration("qp-timeout", time.Second, "conservative-release threshold per candidate; 0 = no limit")
		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "live-session cap (LRU eviction beyond)")
		sessionTTL  = flag.Duration("session-ttl", server.DefaultSessionTTL, "idle-session eviction TTL; negative disables")
		workers     = flag.Int("workers", 0, "step worker pool size; 0 = GOMAXPROCS")
		parallel    = flag.Int("parallel", 0, "kernel worker-pool width: cores one commit's tile-parallel products may occupy; 0 = auto (GOMAXPROCS)")
		queue       = flag.Int("queue", server.DefaultQueueDepth, "per-session pending-step queue depth")
		certCache   = flag.Int("cert-cache", server.DefaultCertCacheSize, "certified-release cache capacity in entries, shared across sessions; 0 disables")
		storeDir    = flag.String("store-dir", "", "session durability directory (WAL + snapshots); empty = in-memory only")
		fsync       = flag.Bool("fsync", false, "fsync every WAL append before acknowledging the step (requires -store-dir)")
		snapEvery   = flag.Int("snapshot-every", server.DefaultSnapshotEvery, "compact a session's WAL into a snapshot every N steps; negative disables")
		cutoff      = flag.Float64("sparse-cutoff", 0, "drop mobility transitions below cutoff*(row max) and renormalise, making the chain sparse; 0 keeps the exact Gaussian kernel")
		kernel      = flag.String("kernel", server.KernelAuto, "transition-kernel compilation: auto, dense, sparse or oracle (naive reference, for regression comparison)")
		shadow      = flag.Bool("shadow", false, "enable the float32 shadow check path: candidate checks run on float32 operator copies and fall back to exact float64 when the certified error margin cannot decide")
		logFormat   = flag.String("log-format", obs.LogText, "structured log format: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error")
		slowStep    = flag.Duration("slow-step", server.DefaultSlowStep, "log a warning (with trace ID and stage breakdown) for steps at least this slow; negative disables")
		pprofAddr   = flag.String("pprof-addr", "", "net/http/pprof listen address (e.g. localhost:6060); empty disables profiling")
		schedAff    = flag.Int("sched-affinity", server.DefaultSchedAffinity, "max consecutive same-plan sessions a worker serves before reverting to arrival order; negative disables plan affinity")
		drainBatch  = flag.Int("drain-batch", server.DefaultDrainBatch, "max steps one worker visit commits for a session before parking it behind its peers; negative removes the cap")
		streamBuf   = flag.Int("stream-buffer", server.DefaultStreamBuffer, "per-subscriber buffered releases on the SSE stream; a subscriber lagging further is dropped")
	)
	flag.Var(&events, "event", `default PRESENCE spec "LO-HI@START-END" (repeatable)`)
	flag.Parse()

	if *logFormat != obs.LogText && *logFormat != obs.LogJSON {
		fmt.Fprintln(os.Stderr, "pristed: -log-format must be text or json")
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pristed:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, level)

	if *workers < 0 {
		// Config.Workers < 0 is an internal test hook (no pool at all);
		// a daemon without workers would accept steps and never serve
		// them.
		fmt.Fprintln(os.Stderr, "pristed: -workers must be >= 0 (0 = GOMAXPROCS)")
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "pristed: -parallel must be >= 0 (0 = auto)")
		os.Exit(2)
	}

	cfg := server.DefaultConfig()
	cfg.GridW, cfg.GridH = *gridN, *gridN
	cfg.Cell = *cell
	cfg.Sigma = *sigma
	cfg.Epsilon = *eps
	cfg.Alpha = *alpha
	cfg.QPTimeout = *qpTimeout
	cfg.SparseCutoff = *cutoff
	cfg.Kernel = *kernel
	cfg.Shadow = *shadow
	cfg.MaxSessions = *maxSessions
	cfg.SessionTTL = *sessionTTL
	cfg.Workers = *workers
	cfg.Parallelism = *parallel
	cfg.QueueDepth = *queue
	if *certCache <= 0 {
		cfg.CertCacheSize = -1 // disable
	} else {
		cfg.CertCacheSize = *certCache
	}
	if *delta >= 0 {
		cfg.Mechanism = server.MechanismDelta
		cfg.Delta = *delta
	}
	if len(events) > 0 {
		cfg.Events = events
	}
	cfg.SnapshotEvery = *snapEvery
	cfg.Logger = logger
	cfg.SlowStep = *slowStep
	cfg.SchedAffinity = *schedAff
	cfg.DrainBatch = *drainBatch
	cfg.StreamBuffer = *streamBuf
	if *storeDir != "" {
		st, err := store.Open(*storeDir, *fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pristed:", err)
			os.Exit(1)
		}
		cfg.Store = st
	} else if *fsync {
		fmt.Fprintln(os.Stderr, "pristed: -fsync requires -store-dir")
		os.Exit(2)
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pristed:", err)
		os.Exit(1)
	}
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The RPC transport is a second front-end over the same Server: both
	// are thin codecs over the shared api.Service.
	var rpcSrv *rpc.Server
	if *rpcAddr != "" {
		lis, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pristed:", err)
			os.Exit(1)
		}
		rpcSrv = rpc.NewServer(srv)
		rpcSrv.Observe = srv.ObserveRPC
		rpcSrv.ObserveStep = srv.ObserveRPCStep
		rpcSrv.OnStreamOpen = srv.ObserveStreamOpen
		rpcSrv.OnStreamClose = srv.ObserveStreamClose
		rpcSrv.ObserveStreamWindow = srv.ObserveStreamWindow
		rpcSrv.ObserveStreamAcks = srv.ObserveStreamAcks
		go func() {
			if err := rpcSrv.Serve(lis); err != nil {
				logger.Error("pristed: rpc listener failed", "err", err)
			}
		}()
	}

	// pprof rides its own listener so profiling endpoints never share the
	// public API address (or its metrics middleware).
	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		lis, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pristed:", err)
			os.Exit(1)
		}
		logger.Info("pristed: pprof listening", "addr", lis.Addr().String())
		go func() {
			psrv := &http.Server{Handler: pprofMux, ReadHeaderTimeout: 10 * time.Second}
			if err := psrv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pristed: pprof listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	durability := "in-memory"
	if *storeDir != "" {
		durability = fmt.Sprintf("durable at %s (fsync=%v)", *storeDir, *fsync)
		if st := srv.Stats().Store; st.Replayed > 0 || st.ReplayFailures > 0 {
			logger.Info("pristed: rehydrated sessions",
				"replayed", st.Replayed, "failed", st.ReplayFailures,
				"replay_ms", st.ReplayMicros/1e3, "warm_cache_entries", st.WarmLoaded)
		}
	}
	health := srv.Health()
	banner := []any{
		"http_addr", *addr,
		"grid", fmt.Sprintf("%dx%d", cfg.GridW, cfg.GridH),
		"mechanism", cfg.Mechanism,
		"kernel", effectiveKernel(cfg),
		"shadow", cfg.Shadow,
		"parallel", effectiveParallelism(cfg),
		"max_sessions", cfg.MaxSessions,
		"queue_depth", cfg.QueueDepth,
		"durability", durability,
		"version", health.Version,
		"go", health.GoVersion,
	}
	if *rpcAddr != "" {
		banner = append(banner, "rpc_addr", *rpcAddr)
	}
	logger.Info("pristed: serving", banner...)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "pristed:", err)
		os.Exit(1)
	}
	// Both listeners down, in-flight handlers returned; drain the queued
	// steps, flush snapshots and the warm cache, then exit.
	if rpcSrv != nil {
		_ = rpcSrv.Close()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Warn("pristed: drain cut short; WAL still covers pending state", "err", err)
	}
	logger.Info("pristed: shut down")
}

// effectiveKernel names the transition-kernel mode the banner reports:
// the forced mode, or "auto" qualified by what auto resolves to.
func effectiveKernel(cfg server.Config) string {
	if cfg.Kernel == "" {
		return server.KernelAuto
	}
	return cfg.Kernel
}

// effectiveParallelism names the kernel-pool width the banner reports:
// the forced width, or what auto resolves to right now.
func effectiveParallelism(cfg server.Config) string {
	if cfg.Parallelism > 0 {
		return strconv.Itoa(cfg.Parallelism)
	}
	return fmt.Sprintf("auto (%d)", runtime.GOMAXPROCS(0))
}
