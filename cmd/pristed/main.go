// Command pristed is the PriSTE release daemon: a long-lived HTTP/JSON
// service managing many independent per-user privacy sessions, each a
// full PriSTE release loop (core.Framework) with its own RNG, mechanism
// and protected-event set. Steps from different users run concurrently
// on a worker pool; each session stays single-writer with FIFO ordering
// and bounded-queue backpressure.
//
// Usage:
//
//	pristed [-addr :8377] [-grid 10] [-cell 1.0] [-sigma 1.0] \
//	    [-eps 0.5] [-alpha 1.0] [-delta -1] [-event "0-9@3-7"]... \
//	    [-max-sessions 4096] [-session-ttl 15m] [-workers 0] [-queue 64] \
//	    [-cert-cache 65536]
//
// API:
//
//	POST   /v1/sessions           {"seed":1,"events":["0-9@3-7"]}
//	POST   /v1/sessions/{id}/step {"loc":42}
//	POST   /v1/step               {"steps":[{"session_id":"..","loc":42},...]}
//	GET    /v1/sessions/{id}      session state
//	DELETE /v1/sessions/{id}      close a session
//	GET    /healthz               liveness
//	GET    /statsz                counters (sessions, steps, latency)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"priste/internal/eventspec"
	"priste/internal/server"
)

func main() {
	var events eventspec.ListFlag
	var (
		addr        = flag.String("addr", ":8377", "listen address")
		gridN       = flag.Int("grid", 10, "map side length")
		cell        = flag.Float64("cell", 1.0, "cell edge length (km)")
		sigma       = flag.Float64("sigma", 1.0, "mobility Gaussian scale")
		eps         = flag.Float64("eps", 0.5, "default epsilon-spatiotemporal event privacy")
		alpha       = flag.Float64("alpha", 1.0, "default initial PLM budget (1/km)")
		delta       = flag.Float64("delta", -1, "default delta-location-set parameter; negative = plain geo-ind")
		qpTimeout   = flag.Duration("qp-timeout", time.Second, "conservative-release threshold per candidate; 0 = no limit")
		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "live-session cap (LRU eviction beyond)")
		sessionTTL  = flag.Duration("session-ttl", server.DefaultSessionTTL, "idle-session eviction TTL; negative disables")
		workers     = flag.Int("workers", 0, "step worker pool size; 0 = GOMAXPROCS")
		queue       = flag.Int("queue", server.DefaultQueueDepth, "per-session pending-step queue depth")
		certCache   = flag.Int("cert-cache", server.DefaultCertCacheSize, "certified-release cache capacity in entries, shared across sessions; 0 disables")
	)
	flag.Var(&events, "event", `default PRESENCE spec "LO-HI@START-END" (repeatable)`)
	flag.Parse()

	if *workers < 0 {
		// Config.Workers < 0 is an internal test hook (no pool at all);
		// a daemon without workers would accept steps and never serve
		// them.
		fmt.Fprintln(os.Stderr, "pristed: -workers must be >= 0 (0 = GOMAXPROCS)")
		os.Exit(2)
	}

	cfg := server.DefaultConfig()
	cfg.GridW, cfg.GridH = *gridN, *gridN
	cfg.Cell = *cell
	cfg.Sigma = *sigma
	cfg.Epsilon = *eps
	cfg.Alpha = *alpha
	cfg.QPTimeout = *qpTimeout
	cfg.MaxSessions = *maxSessions
	cfg.SessionTTL = *sessionTTL
	cfg.Workers = *workers
	cfg.QueueDepth = *queue
	if *certCache <= 0 {
		cfg.CertCacheSize = -1 // disable
	} else {
		cfg.CertCacheSize = *certCache
	}
	if *delta >= 0 {
		cfg.Mechanism = server.MechanismDelta
		cfg.Delta = *delta
	}
	if len(events) > 0 {
		cfg.Events = events
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pristed:", err)
		os.Exit(1)
	}
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("pristed: serving on %s (map %dx%d, mechanism %s, max %d sessions, %d-deep queues)",
		*addr, cfg.GridW, cfg.GridH, cfg.Mechanism, cfg.MaxSessions, cfg.QueueDepth)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "pristed:", err)
		os.Exit(1)
	}
	log.Printf("pristed: shut down")
}
