// Command quantify audits how much ε-spatiotemporal event privacy an
// existing release provides: given the mobility model, an event and the
// per-timestamp (budget, observation) pairs of a released trajectory (the
// output of cmd/priste), it replays the two-possible-world quantifier and
// reports the adversary's prior, posterior trajectory and realised odds
// shift — the paper's §III quantification as a standalone tool.
//
// Usage:
//
//	go run ./cmd/priste -grid 8 ... > released.csv
//	go run ./cmd/quantify -grid 8 -event "0-9@3-7" -in released.csv
//
// The input format is cmd/priste's output: lines "t,true,released,budget,
// attempts,uniform" (the "true" column is ignored — the audit sees only
// what the adversary sees).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"priste"
)

func main() {
	var (
		gridN = flag.Int("grid", 10, "map side length")
		cell  = flag.Float64("cell", 1.0, "cell edge length (km)")
		sigma = flag.Float64("sigma", 1.0, "mobility Gaussian scale")
		spec  = flag.String("event", "0-9@3-7", `PRESENCE spec "LO-HI@START-END"`)
		in    = flag.String("in", "", "released trajectory CSV (cmd/priste output); default stdin")
	)
	flag.Parse()

	g, err := priste.NewGrid(*gridN, *gridN, *cell)
	check(err)
	m := g.States()
	chain, err := priste.GaussianChain(g, *sigma)
	check(err)
	pi := priste.UniformDistribution(m)

	var f *os.File
	if *in == "" {
		f = os.Stdin
	} else {
		f, err = os.Open(*in)
		check(err)
		defer f.Close()
	}
	releases, err := parseReleases(f, m)
	check(err)
	if len(releases) == 0 {
		check(fmt.Errorf("no releases parsed"))
	}

	ev, err := parseEvent(*spec, m, len(releases))
	check(err)
	md, err := priste.NewQuantModel(priste.Homogeneous(chain), ev)
	check(err)
	prior, err := priste.EventPrior(md, pi)
	check(err)

	// Rebuild the emission columns the adversary would use.
	plm := priste.NewPlanarLaplace(g)
	cols := make([]priste.Vector, len(releases))
	for t, r := range releases {
		if r.uniform || r.budget <= 0 {
			u := priste.NewVector(m)
			for i := range u {
				u[i] = 1 / float64(m)
			}
			cols[t] = u
			continue
		}
		em, err := plm.Emission(r.budget)
		check(err)
		cols[t] = em.Col(r.obs)
	}

	loss, err := priste.PrivacyLoss(md, pi, cols)
	check(err)
	fmt.Printf("event: %v\n", ev)
	fmt.Printf("prior Pr(EVENT) under uniform belief: %.6f\n", prior)
	fmt.Printf("realised privacy loss: %.6f (odds shift x%.3f)\n", loss, math.Exp(loss))
	fmt.Println("\nt,posterior")
	post, err := eventPosterior(md, pi, cols)
	check(err)
	for t, p := range post {
		fmt.Printf("%d,%.6f\n", t, p)
	}
}

// eventPosterior replays the quantifier and reports Pr(EVENT | o_0..o_t).
func eventPosterior(md *priste.QuantModel, pi priste.Vector, cols []priste.Vector) ([]float64, error) {
	q := priste.NewQuantifier(md)
	out := make([]float64, len(cols))
	for t, c := range cols {
		if err := q.Commit(c); err != nil {
			return nil, err
		}
		chk := q.Current()
		joint := pi.Dot(chk.BTilde)
		marg := pi.Dot(chk.CTilde)
		if marg <= 0 {
			return nil, fmt.Errorf("observations impossible under the model at t=%d", t)
		}
		out[t] = joint / marg
	}
	return out, nil
}

type release struct {
	obs     int
	budget  float64
	uniform bool
}

func parseReleases(f *os.File, m int) ([]release, error) {
	sc := bufio.NewScanner(f)
	var out []release
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 6 {
			return nil, fmt.Errorf("line %d: want t,true,released,budget,attempts,uniform", line)
		}
		obs, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("line %d: released: %w", line, err)
		}
		if obs < 0 || obs >= m {
			return nil, fmt.Errorf("line %d: released state %d outside %d-state map", line, obs, m)
		}
		budget, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: budget: %w", line, err)
		}
		uniform, err := strconv.ParseBool(fields[5])
		if err != nil {
			return nil, fmt.Errorf("line %d: uniform: %w", line, err)
		}
		out = append(out, release{obs: obs, budget: budget, uniform: uniform})
	}
	return out, sc.Err()
}

func parseEvent(spec string, m, horizon int) (priste.Event, error) {
	parts := strings.Split(spec, "@")
	if len(parts) != 2 {
		return nil, fmt.Errorf("event %q: want LO-HI@START-END", spec)
	}
	rg := func(s string) (int, int, error) {
		p := strings.Split(s, "-")
		if len(p) != 2 {
			return 0, 0, fmt.Errorf("want LO-HI, got %q", s)
		}
		lo, err := strconv.Atoi(p[0])
		if err != nil {
			return 0, 0, err
		}
		hi, err := strconv.Atoi(p[1])
		if err != nil {
			return 0, 0, err
		}
		return lo, hi, nil
	}
	lo, hi, err := rg(parts[0])
	if err != nil {
		return nil, err
	}
	start, end, err := rg(parts[1])
	if err != nil {
		return nil, err
	}
	if hi >= m || end >= horizon {
		return nil, fmt.Errorf("event %q outside map/horizon", spec)
	}
	region := priste.NewRegion(m)
	for s := lo; s <= hi; s++ {
		region.Add(s)
	}
	return priste.NewPresence(region, start, end)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "quantify:", err)
		os.Exit(1)
	}
}
