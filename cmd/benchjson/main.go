// Command benchjson runs the repository's benchmark suite and writes the
// parsed results as a JSON document, so the perf trajectory (steps/sec,
// ns/op, allocs/op) is tracked as a build artifact from PR to PR instead
// of living in commit messages.
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH_PR8.json] [-benchtime 1x] \
//	    [-spec "./internal/mat=.,./internal/world=.,.=ServerStep|SharedPlan|EngineStepCeiling"]
//
// Each -spec entry is package=benchRegexp, optionally suffixed
// @benchtime to override the global -benchtime for that entry alone
// (e.g. ".=ServerStep@400x" runs the serving benchmarks long enough
// for steady-state steps/sec while the expensive kernel benchmarks
// keep the short global budget). The default covers the mat
// and world kernel benchmarks plus the root serving benchmarks — the
// ServerStep pattern picks up every transport and ingest mode
// (BenchmarkServerStep over HTTP, BenchmarkServerStepRPC over the
// binary RPC protocol, BenchmarkServerStepStream/-HTTP over the
// windowed stream pipeline), so the document records them side by
// side, and EngineStepCeiling records the raw engine throughput the
// serving numbers are compared against.
//
// Serving benchmarks additionally report the server's per-stage latency
// means (decode, queue_wait, commit_hit/commit_miss, wal_append, encode
// — the instrumentation behind /metricsz and `pristectl stats -stages`).
// benchjson lifts those into a top-level "stages" section per serving
// benchmark, with the stage sum and the measured end-to-end served mean
// side by side so the breakdown's coverage of real latency is auditable
// in the committed artifact.
//
// When the run includes BenchmarkEngineStepCeiling, benchjson also
// derives a "serving_gap" section: for every ServerStep* result it
// records served steps/sec against the engine ceiling and their ratio
// (served/ceiling — 1.0 means the transport adds no overhead), so the
// serving-overhead gap each PR is chasing is a single committed number
// per transport.
//
// When the run includes the kernel-comparison benchmarks (BenchmarkCommit
// over the chain=/kernel= grid, BenchmarkShadowCheck), benchjson derives
// a "kernels" section pairing each adaptive path against its in-run
// reference — adaptive dense vs the naive oracle kernels, banded-dense
// vs CSR over the truncated chain, float32 shadow vs exact check — plus
// the shadow path's engine-level fallback rate.
//
// Sweep mode (-cpu 1,2,4,8) runs the whole spec once per listed
// GOMAXPROCS value, each in its own `go test` subprocess with the
// GOMAXPROCS environment set. The first listed value produces the
// document's main "results" section (and stamps the document-level
// gomaxprocs), keeping it -compare-compatible with single-run baselines;
// every run also lands in "cpu_sweep" with a per-entry gomaxprocs, and a
// derived "parallel_scaling" section reports, for each throughput
// benchmark, the speedup and parallel efficiency of every multi-core row
// against the first-listed (normally 1-core) row.
//
// Regression mode compares two committed documents instead of running
// anything:
//
//	go run ./cmd/benchjson -compare [-threshold 0.15] OLD.json NEW.json
//
// Every benchmark present in both documents with a throughput metric
// (steps/sec or commits/sec) is compared; NEW falling more than
// -threshold below OLD on any of them fails the run (exit 1) with a
// per-benchmark table on stderr. CI runs it against the committed
// baseline with a generous threshold: runner hardware varies run to
// run, so only a large, consistent drop should fail a build. When the
// two documents disagree on gomaxprocs or go_version the comparison is
// meaningless (multi-core entries must never be diffed against 1-core
// baselines), so benchjson warns and skips gating (exit 0) instead.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Package    string `json:"package"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Benchtime is set when the entry overrode the document-level
	// benchtime (the spec's @benchtime suffix).
	Benchtime string `json:"benchtime,omitempty"`
	// GOMAXPROCS is set on cpu_sweep entries: the width the run's
	// subprocess was pinned to (the document-level gomaxprocs covers
	// the main results section).
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// Metrics maps unit → value, e.g. "ns/op", "allocs/op", "B/op",
	// "steps/sec", "commits/sec".
	Metrics map[string]float64 `json:"metrics"`
}

// StageBreakdown is one serving benchmark's per-stage latency decomposition,
// lifted from the benchmark's reported metrics: mean microseconds each stage
// contributed per served step, their sum, and the measured end-to-end served
// mean the sum should approximate.
type StageBreakdown struct {
	Name string `json:"name"`
	// StageMeansMicros maps stage → mean µs per served step, e.g.
	// "decode", "queue_wait", "commit_miss", "encode".
	StageMeansMicros map[string]float64 `json:"stage_means_us"`
	StageSumMicros   float64            `json:"stage_sum_us"`
	E2EMeanMicros    float64            `json:"e2e_mean_us"`
	// CoverageRatio is stage_sum / e2e — how much of the measured served
	// latency the instrumented stages account for.
	CoverageRatio float64 `json:"coverage_ratio"`
}

// ServingGap compares one serving benchmark against the raw engine
// ceiling measured in the same run: the fraction of engine throughput
// that survives the serving path (1.0 = the transport is free).
type ServingGap struct {
	Name                  string  `json:"name"`
	ServedStepsPerSec     float64 `json:"served_steps_per_sec"`
	CeilingStepsPerSec    float64 `json:"ceiling_steps_per_sec"`
	RatioServedOverCeil   float64 `json:"ratio"`
	OverheadMicrosPerStep float64 `json:"overhead_us_per_step"`
}

// KernelComparison pairs one adaptive kernel path against its in-run
// reference: Speedup is candidate/baseline for rate units (…/sec) and
// baseline/candidate for cost units (ns/op), so >1 always means the
// adaptive path won.
type KernelComparison struct {
	Name           string  `json:"name"`
	Baseline       string  `json:"baseline"`
	Candidate      string  `json:"candidate"`
	Unit           string  `json:"unit"`
	BaselineValue  float64 `json:"baseline_value"`
	CandidateValue float64 `json:"candidate_value"`
	Speedup        float64 `json:"speedup"`
}

// KernelSection is the derived kernel-dispatch summary.
type KernelSection struct {
	Comparisons []KernelComparison `json:"comparisons"`
	// ShadowFallbackRate is the fraction of shadow checks the shadow
	// path itself could not serve during BenchmarkShadowCheck (warm
	// operators: expected 0; the qp-margin fallback is reported by the
	// serving layer's shadow_fallbacks counter instead).
	ShadowFallbackRate float64 `json:"shadow_fallback_rate"`
}

// ScalingRow is one benchmark's throughput at one swept GOMAXPROCS
// value against the sweep's base (first-listed, normally 1-core) row:
// Speedup = value/base_value, Efficiency = speedup normalised by the
// core ratio (1.0 = perfect linear scaling).
type ScalingRow struct {
	Name       string  `json:"name"`
	Unit       string  `json:"unit"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Value      float64 `json:"value"`
	BaseValue  float64 `json:"base_value"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// Doc is the output document.
type Doc struct {
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Benchtime   string           `json:"benchtime,omitempty"`
	Results     []Result         `json:"results"`
	Stages      []StageBreakdown `json:"stages,omitempty"`
	ServingGap  []ServingGap     `json:"serving_gap,omitempty"`
	Kernels     *KernelSection   `json:"kernels,omitempty"`
	// CPUSweep holds every per-GOMAXPROCS run of a -cpu sweep
	// (including the base run); ParallelScaling the derived
	// speedup/efficiency rows against the base run.
	CPUSweep        []Result     `json:"cpu_sweep,omitempty"`
	ParallelScaling []ScalingRow `json:"parallel_scaling,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_PR9.json", "output file")
	benchtime := flag.String("benchtime", "", "passed to go test -benchtime; empty = default")
	spec := flag.String("spec", "./internal/mat=.,./internal/world=.,.=ServerStep|SharedPlan|EngineStepCeiling",
		"comma-separated package=benchRegexp entries")
	cpu := flag.String("cpu", "", "comma-separated GOMAXPROCS sweep (e.g. 1,2,4,8): run the spec once per value; first value fills the main results section, every run lands in cpu_sweep + parallel_scaling")
	compare := flag.Bool("compare", false, "compare two committed documents (OLD.json NEW.json args) instead of running benchmarks; exit 1 on regression")
	threshold := flag.Float64("threshold", 0.15, "with -compare: maximum tolerated fractional throughput drop before failing")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare wants exactly two args: OLD.json NEW.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold))
	}

	cpus, err := parseCPUList(*cpu)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}

	doc := Doc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Benchtime:   *benchtime,
	}
	if len(cpus) == 0 {
		// Single run inheriting the process environment.
		doc.Results, err = runSpec(*spec, *benchtime, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	} else {
		// Sweep: the first listed width is the document's canonical
		// environment (so -compare against single-run baselines stays
		// meaningful), the rest only feed cpu_sweep/parallel_scaling.
		doc.GOMAXPROCS = cpus[0]
		for i, w := range cpus {
			fmt.Printf("benchjson: sweep GOMAXPROCS=%d (%d/%d)\n", w, i+1, len(cpus))
			results, err := runSpec(*spec, *benchtime, w)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			if i == 0 {
				doc.Results = results
			}
			for _, r := range results {
				r.GOMAXPROCS = w
				doc.CPUSweep = append(doc.CPUSweep, r)
			}
		}
		doc.ParallelScaling = parallelScaling(doc.CPUSweep, cpus[0])
	}
	doc.Stages = stageBreakdowns(doc.Results)
	doc.ServingGap = servingGaps(doc.Results)
	doc.Kernels = kernelSection(doc.Results)

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}

// parseCPUList parses the -cpu flag: a comma-separated list of positive
// GOMAXPROCS values, empty meaning "no sweep".
func parseCPUList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -cpu entry %q (want positive integers, e.g. -cpu 1,2,4)", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// runSpec runs every spec entry once. gomaxprocs > 0 pins each go test
// subprocess to that width via the GOMAXPROCS environment; 0 inherits
// the parent environment.
func runSpec(spec, benchtime string, gomaxprocs int) ([]Result, error) {
	var all []Result
	for _, entry := range strings.Split(spec, ",") {
		pkg, re, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("bad spec entry %q (want package=regexp[@benchtime])", entry)
		}
		bt, overridden := benchtime, ""
		if re2, suffix, ok := strings.Cut(re, "@"); ok {
			re, bt, overridden = re2, suffix, suffix
		}
		results, err := runPackage(pkg, re, bt, gomaxprocs)
		if err != nil {
			return nil, err
		}
		for i := range results {
			results[i].Benchtime = overridden
		}
		all = append(all, results...)
	}
	return all, nil
}

// parallelScaling derives the speedup/efficiency rows from a sweep: for
// every benchmark with a throughput metric at the base width, each
// non-base width contributes one row per throughput unit.
func parallelScaling(sweep []Result, baseCPU int) []ScalingRow {
	type key struct{ name, unit string }
	base := map[key]float64{}
	for _, r := range sweep {
		if r.GOMAXPROCS != baseCPU {
			continue
		}
		for _, unit := range throughputUnits {
			if v, ok := r.Metrics[unit]; ok && v > 0 {
				base[key{r.Name, unit}] = v
			}
		}
	}
	var out []ScalingRow
	for _, r := range sweep {
		if r.GOMAXPROCS == baseCPU {
			continue
		}
		for _, unit := range throughputUnits {
			v, ok := r.Metrics[unit]
			bv := base[key{r.Name, unit}]
			if !ok || v <= 0 || bv <= 0 {
				continue
			}
			speedup := v / bv
			out = append(out, ScalingRow{
				Name:       r.Name,
				Unit:       unit,
				GOMAXPROCS: r.GOMAXPROCS,
				Value:      v,
				BaseValue:  bv,
				Speedup:    speedup,
				Efficiency: speedup * float64(baseCPU) / float64(r.GOMAXPROCS),
			})
		}
	}
	return out
}

// stageBreakdowns extracts the stage decomposition from every result
// that carries one (the serving benchmarks report stage_sum_us/e2e_us
// plus per-stage "<stage>_us" metrics).
func stageBreakdowns(results []Result) []StageBreakdown {
	var out []StageBreakdown
	for _, r := range results {
		e2e, okE2E := r.Metrics["e2e_us"]
		sum, okSum := r.Metrics["stage_sum_us"]
		if !okE2E || !okSum {
			continue
		}
		sb := StageBreakdown{
			Name:             r.Name,
			StageMeansMicros: map[string]float64{},
			StageSumMicros:   sum,
			E2EMeanMicros:    e2e,
		}
		for unit, v := range r.Metrics {
			stage, ok := strings.CutSuffix(unit, "_us")
			if !ok || stage == "stage_sum" || stage == "e2e" {
				continue
			}
			sb.StageMeansMicros[stage] = v
		}
		if e2e > 0 {
			sb.CoverageRatio = sum / e2e
		}
		out = append(out, sb)
	}
	return out
}

// servingGaps derives the serving-overhead section: every ServerStep*
// result's steps/sec against the BenchmarkEngineStepCeiling steps/sec
// from the same run. Nil when the run didn't include the ceiling.
func servingGaps(results []Result) []ServingGap {
	var ceiling float64
	for _, r := range results {
		if r.Name == "BenchmarkEngineStepCeiling" {
			ceiling = r.Metrics["steps/sec"]
		}
	}
	if ceiling <= 0 {
		return nil
	}
	var out []ServingGap
	for _, r := range results {
		if !strings.HasPrefix(r.Name, "BenchmarkServerStep") {
			continue
		}
		served, ok := r.Metrics["steps/sec"]
		if !ok || served <= 0 {
			continue
		}
		out = append(out, ServingGap{
			Name:                  r.Name,
			ServedStepsPerSec:     served,
			CeilingStepsPerSec:    ceiling,
			RatioServedOverCeil:   served / ceiling,
			OverheadMicrosPerStep: (1/served - 1/ceiling) * 1e6,
		})
	}
	return out
}

// kernelSection derives the adaptive-vs-reference comparisons from the
// run's results. Nil when none of the paired benchmarks ran.
func kernelSection(results []Result) *KernelSection {
	metric := func(name, unit string) (float64, bool) {
		for _, r := range results {
			if r.Name == name {
				v, ok := r.Metrics[unit]
				return v, ok
			}
		}
		return 0, false
	}
	// (name, baseline bench, candidate bench, unit); rate units score
	// candidate/baseline, cost units baseline/candidate.
	pairs := [][4]string{
		{"adaptive_dense_vs_oracle_commit_m400",
			"BenchmarkCommit/chain=gauss/kernel=oracle/m400",
			"BenchmarkCommit/chain=gauss/kernel=dense/m400", "commits/sec"},
		{"banded_dense_vs_csr_commit_m400",
			"BenchmarkCommit/chain=trunc/kernel=sparse/m400",
			"BenchmarkCommit/chain=trunc/kernel=dense/m400", "commits/sec"},
		{"shadow_vs_exact_check_m400",
			"BenchmarkShadowCheck/path=exact/m400",
			"BenchmarkShadowCheck/path=shadow/m400", "ns/op"},
		{"shadow_vs_exact_check_m900",
			"BenchmarkShadowCheck/path=exact/m900",
			"BenchmarkShadowCheck/path=shadow/m900", "ns/op"},
		{"blocked_vs_naive_mul_m400",
			"BenchmarkMulNaive400",
			"BenchmarkMulBlocked400", "ns/op"},
	}
	sec := &KernelSection{}
	for _, p := range pairs {
		base, okB := metric(p[1], p[3])
		cand, okC := metric(p[2], p[3])
		if !okB || !okC || base <= 0 || cand <= 0 {
			continue
		}
		speedup := cand / base
		if strings.HasSuffix(p[3], "/op") {
			speedup = base / cand
		}
		sec.Comparisons = append(sec.Comparisons, KernelComparison{
			Name: p[0], Baseline: p[1], Candidate: p[2], Unit: p[3],
			BaselineValue: base, CandidateValue: cand, Speedup: speedup,
		})
	}
	for _, r := range results {
		if fr, ok := r.Metrics["fallback-rate"]; ok && fr > sec.ShadowFallbackRate {
			sec.ShadowFallbackRate = fr
		}
	}
	if len(sec.Comparisons) == 0 {
		return nil
	}
	return sec
}

// throughputUnits are the metrics the -compare mode guards. Cost metrics
// (ns/op, B/op) are deliberately excluded: they swing with benchtime and
// iteration-count warm-up far more than the derived rates do.
var throughputUnits = []string{"steps/sec", "commits/sec"}

// runCompare loads two documents and fails (exit code 1) when NEW falls
// more than threshold below OLD on any shared throughput metric. A
// gomaxprocs or go_version mismatch between the documents makes the
// throughput diff meaningless, so it warns and skips gating (exit 0)
// rather than failing a build on an environment change.
func runCompare(oldPath, newPath string, threshold float64) int {
	load := func(path string) (*Doc, error) {
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var d Doc
		if err := json.Unmarshal(buf, &d); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &d, nil
	}
	oldDoc, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if oldDoc.GOMAXPROCS != newDoc.GOMAXPROCS || oldDoc.GoVersion != newDoc.GoVersion {
		fmt.Fprintf(os.Stderr,
			"benchjson: WARNING: environment mismatch between documents — skipping regression gating\n"+
				"  %s: gomaxprocs=%d go=%s\n  %s: gomaxprocs=%d go=%s\n"+
				"throughput measured at different core counts or toolchains is not comparable; regenerate the baseline in the new environment\n",
			oldPath, oldDoc.GOMAXPROCS, oldDoc.GoVersion,
			newPath, newDoc.GOMAXPROCS, newDoc.GoVersion)
		return 0
	}
	byName := func(d *Doc) map[string]map[string]float64 {
		m := make(map[string]map[string]float64, len(d.Results))
		for _, r := range d.Results {
			m[r.Name] = r.Metrics
		}
		return m
	}
	oldBy, newBy := byName(oldDoc), byName(newDoc)
	compared, regressions := 0, 0
	for name, oldMetrics := range oldBy {
		newMetrics, ok := newBy[name]
		if !ok {
			continue // renamed/removed benchmarks are not regressions
		}
		for _, unit := range throughputUnits {
			ov, okO := oldMetrics[unit]
			nv, okN := newMetrics[unit]
			if !okO || !okN || ov <= 0 {
				continue
			}
			compared++
			change := nv/ov - 1
			status := "ok"
			if change < -threshold {
				status = "REGRESSION"
				regressions++
			}
			fmt.Fprintf(os.Stderr, "%-60s %12s %14.2f -> %14.2f  %+6.1f%%  %s\n",
				name, unit, ov, nv, change*100, status)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no shared throughput metrics to compare")
		return 2
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d of %d throughput metrics regressed more than %.0f%%\n",
			regressions, compared, threshold*100)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d throughput metrics within %.0f%% of baseline\n",
		compared, threshold*100)
	return 0
}

// runPackage executes the package's benchmarks and parses the output.
// gomaxprocs > 0 pins the subprocess via the GOMAXPROCS environment.
func runPackage(pkg, benchRe, benchtime string, gomaxprocs int) ([]Result, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	if gomaxprocs > 0 {
		cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", gomaxprocs))
	}
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, outBuf.String())
	}
	// Benchmark names carry the subprocess's GOMAXPROCS suffix, which is
	// the pinned width in sweep mode, not this process's.
	procs := gomaxprocs
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	var results []Result
	sc := bufio.NewScanner(&outBuf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(pkg, sc.Text(), procs); ok {
			results = append(results, r)
		}
	}
	return results, sc.Err()
}

// parseLine parses one "BenchmarkName-P  N  v1 unit1  v2 unit2 ..." line,
// where P is the procs the benchmark binary ran with.
func parseLine(pkg, line string, procs int) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Package:    pkg,
		Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", procs)),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
