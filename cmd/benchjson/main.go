// Command benchjson runs the repository's benchmark suite and writes the
// parsed results as a JSON document, so the perf trajectory (steps/sec,
// ns/op, allocs/op) is tracked as a build artifact from PR to PR instead
// of living in commit messages.
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH_PR6.json] [-benchtime 1x] \
//	    [-spec "./internal/mat=.,./internal/world=.,.=ServerStep|SharedPlan"]
//
// Each -spec entry is package=benchRegexp; the default covers the mat
// and world kernel benchmarks plus the root serving benchmarks — the
// ServerStep pattern picks up both transports (BenchmarkServerStep over
// HTTP and BenchmarkServerStepRPC over the binary RPC protocol), so the
// document records HTTP-vs-RPC steps/sec side by side.
//
// Serving benchmarks additionally report the server's per-stage latency
// means (decode, queue_wait, commit_hit/commit_miss, wal_append, encode
// — the instrumentation behind /metricsz and `pristectl stats -stages`).
// benchjson lifts those into a top-level "stages" section per serving
// benchmark, with the stage sum and the measured end-to-end served mean
// side by side so the breakdown's coverage of real latency is auditable
// in the committed artifact.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Package    string `json:"package"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value, e.g. "ns/op", "allocs/op", "B/op",
	// "steps/sec", "commits/sec".
	Metrics map[string]float64 `json:"metrics"`
}

// StageBreakdown is one serving benchmark's per-stage latency decomposition,
// lifted from the benchmark's reported metrics: mean microseconds each stage
// contributed per served step, their sum, and the measured end-to-end served
// mean the sum should approximate.
type StageBreakdown struct {
	Name string `json:"name"`
	// StageMeansMicros maps stage → mean µs per served step, e.g.
	// "decode", "queue_wait", "commit_miss", "encode".
	StageMeansMicros map[string]float64 `json:"stage_means_us"`
	StageSumMicros   float64            `json:"stage_sum_us"`
	E2EMeanMicros    float64            `json:"e2e_mean_us"`
	// CoverageRatio is stage_sum / e2e — how much of the measured served
	// latency the instrumented stages account for.
	CoverageRatio float64 `json:"coverage_ratio"`
}

// Doc is the output document.
type Doc struct {
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Benchtime   string           `json:"benchtime,omitempty"`
	Results     []Result         `json:"results"`
	Stages      []StageBreakdown `json:"stages,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_PR6.json", "output file")
	benchtime := flag.String("benchtime", "", "passed to go test -benchtime; empty = default")
	spec := flag.String("spec", "./internal/mat=.,./internal/world=.,.=ServerStep|SharedPlan",
		"comma-separated package=benchRegexp entries")
	flag.Parse()

	doc := Doc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Benchtime:   *benchtime,
	}
	for _, entry := range strings.Split(*spec, ",") {
		pkg, re, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: bad spec entry %q (want package=regexp)\n", entry)
			os.Exit(2)
		}
		results, err := runPackage(pkg, re, *benchtime)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		doc.Results = append(doc.Results, results...)
	}
	doc.Stages = stageBreakdowns(doc.Results)

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}

// stageBreakdowns extracts the stage decomposition from every result
// that carries one (the serving benchmarks report stage_sum_us/e2e_us
// plus per-stage "<stage>_us" metrics).
func stageBreakdowns(results []Result) []StageBreakdown {
	var out []StageBreakdown
	for _, r := range results {
		e2e, okE2E := r.Metrics["e2e_us"]
		sum, okSum := r.Metrics["stage_sum_us"]
		if !okE2E || !okSum {
			continue
		}
		sb := StageBreakdown{
			Name:             r.Name,
			StageMeansMicros: map[string]float64{},
			StageSumMicros:   sum,
			E2EMeanMicros:    e2e,
		}
		for unit, v := range r.Metrics {
			stage, ok := strings.CutSuffix(unit, "_us")
			if !ok || stage == "stage_sum" || stage == "e2e" {
				continue
			}
			sb.StageMeansMicros[stage] = v
		}
		if e2e > 0 {
			sb.CoverageRatio = sum / e2e
		}
		out = append(out, sb)
	}
	return out
}

// runPackage executes the package's benchmarks and parses the output.
func runPackage(pkg, benchRe, benchtime string) ([]Result, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, outBuf.String())
	}
	var results []Result
	sc := bufio.NewScanner(&outBuf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(pkg, sc.Text()); ok {
			results = append(results, r)
		}
	}
	return results, sc.Err()
}

// parseLine parses one "BenchmarkName-P  N  v1 unit1  v2 unit2 ..." line.
func parseLine(pkg, line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Package:    pkg,
		Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
