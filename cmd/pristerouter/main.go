// Command pristerouter is the PriSTE fleet router: a stateless front
// door that shards sessions across a fleet of pristed backends with a
// consistent-hash ring (internal/ring, internal/router) and serves the
// exact same versioned API a single pristed does — any priste client
// points at the router unchanged.
//
// Usage:
//
//	pristerouter -backend http://10.0.0.1:8377 -backend rpc://10.0.0.2:8378 \
//	    [-addr :8377] [-rpc-addr ""] [-vnodes 128] \
//	    [-probe-interval 1s] [-probe-timeout 2s] [-fail-after 3] [-readmit-after 2] \
//	    [-migration-timeout 30s] [-call-timeout 30s] \
//	    [-log-format text] [-log-level info]
//
// Each -backend names one pristed: an http:// base URL (the HTTP/JSON
// transport) or an rpc://host:port address (the binary RPC transport).
// The URL itself is the backend's ring identity, so keep it stable
// across router restarts — placement is a pure function of the
// identity set.
//
// Routing: session-scoped calls go to the session id's ring owner;
// ListSessions and Stats fan out across the fleet and merge (the
// router's /statsz carries a "fleet" section). Backends are
// health-probed every -probe-interval, ejected from the ring after
// -fail-after consecutive failures and readmitted (with their
// minimal-movement session share migrated back) after -readmit-after
// consecutive successes. On every ring change only the sessions in the
// moved hash ranges are drained and re-homed through the export→import
// path, fingerprint-verified before the old copy is tombstoned, with
// in-flight steps parked (not failed) during each session's handoff.
//
// Admin surface, on top of the standard API routes:
//
//	GET  /v1/fleet            ring + per-backend health/session status
//	POST /v1/fleet/rebalance  {"backend":"...","undrain":false} drain or
//	                          readmit a member (see `pristectl fleet`)
//	GET  /metricsz            priste_router_* metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"priste/internal/obs"
	"priste/internal/ring"
	"priste/internal/router"
	"priste/internal/rpc"
	"priste/internal/server"
)

// backendsFlag collects repeatable -backend values.
type backendsFlag []string

func (f *backendsFlag) String() string     { return strings.Join(*f, ",") }
func (f *backendsFlag) Set(v string) error { *f = append(*f, v); return nil }

// dialBackend turns one -backend value into a named api.Client.
func dialBackend(spec string) (router.Backend, func(), error) {
	switch {
	case strings.HasPrefix(spec, "http://"), strings.HasPrefix(spec, "https://"):
		return router.Backend{Name: spec, Client: server.NewClient(spec, nil)}, func() {}, nil
	case strings.HasPrefix(spec, "rpc://"):
		c, err := rpc.Dial(strings.TrimPrefix(spec, "rpc://"))
		if err != nil {
			return router.Backend{}, nil, err
		}
		return router.Backend{Name: spec, Client: c}, func() { _ = c.Close() }, nil
	default:
		return router.Backend{}, nil, fmt.Errorf("backend %q: want http://, https:// or rpc:// prefix", spec)
	}
}

func main() {
	var backends backendsFlag
	var (
		addr       = flag.String("addr", ":8377", "HTTP listen address")
		rpcAddr    = flag.String("rpc-addr", "", "binary RPC listen address (e.g. :8378); empty disables the RPC transport")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per ring member; 0 = default (128)")
		probeIval  = flag.Duration("probe-interval", time.Second, "backend health-probe cadence; negative disables probing")
		probeTO    = flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
		failAfter  = flag.Int("fail-after", 3, "consecutive failed probes before a backend is ejected from the ring")
		readmit    = flag.Int("readmit-after", 2, "consecutive successful probes before an ejected backend is readmitted")
		migTO      = flag.Duration("migration-timeout", 30*time.Second, "end-to-end timeout for one session migration")
		callTO     = flag.Duration("call-timeout", 30*time.Second, "timeout for proxied calls that carry no caller deadline")
		logFormat  = flag.String("log-format", obs.LogText, "structured log format: text or json")
		logLevelFl = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Var(&backends, "backend", "pristed backend, http://host:port or rpc://host:port (repeatable, required)")
	flag.Parse()

	if *logFormat != obs.LogText && *logFormat != obs.LogJSON {
		fmt.Fprintln(os.Stderr, "pristerouter: -log-format must be text or json")
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevelFl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pristerouter:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, level)
	if len(backends) == 0 {
		fmt.Fprintln(os.Stderr, "pristerouter: at least one -backend is required")
		os.Exit(2)
	}

	cfg := router.Config{
		VirtualNodes:     *vnodes,
		ProbeInterval:    *probeIval,
		ProbeTimeout:     *probeTO,
		FailAfter:        *failAfter,
		ReadmitAfter:     *readmit,
		MigrationTimeout: *migTO,
		CallTimeout:      *callTO,
		Logger:           logger,
	}
	var closers []func()
	for _, spec := range backends {
		b, closeFn, err := dialBackend(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pristerouter:", err)
			os.Exit(2)
		}
		cfg.Backends = append(cfg.Backends, b)
		closers = append(closers, closeFn)
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	rt, err := router.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pristerouter:", err)
		os.Exit(1)
	}
	defer rt.Shutdown()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The RPC transport is a second front-end over the same router: both
	// are thin codecs over the shared api.Service.
	var rpcSrv *rpc.Server
	if *rpcAddr != "" {
		lis, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pristerouter:", err)
			os.Exit(1)
		}
		rpcSrv = rpc.NewServer(rt)
		go func() {
			if err := rpcSrv.Serve(lis); err != nil {
				logger.Error("pristerouter: rpc listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	banner := []any{
		"http_addr", *addr,
		"backends", len(cfg.Backends),
		"vnodes", ringVnodes(*vnodes),
		"probe_interval", probeIval.String(),
		"fail_after", *failAfter,
		"readmit_after", *readmit,
	}
	if *rpcAddr != "" {
		banner = append(banner, "rpc_addr", *rpcAddr)
	}
	logger.Info("pristerouter: serving", banner...)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "pristerouter:", err)
		os.Exit(1)
	}
	if rpcSrv != nil {
		_ = rpcSrv.Close()
	}
	logger.Info("pristerouter: shut down")
}

// ringVnodes names the effective per-member point count for the banner.
func ringVnodes(v int) int {
	if v <= 0 {
		return ring.DefaultVirtualNodes
	}
	return v
}
