// Command experiments regenerates the paper's evaluation (§V): Figs. 7–14
// and Table III, as CSV files plus an aligned-text report.
//
// Usage:
//
//	go run ./cmd/experiments [flags]
//
//	-out dir       output directory for CSV files (default "results")
//	-only list     comma-separated subset, e.g. "fig7,fig11,table3"
//	-grid n        map side length (default 10; paper uses 20)
//	-T n           trajectory length (default 30; paper uses 50)
//	-runs n        repeated runs per configuration (default 10; paper 100)
//	-full          paper-scale parameters (20×20, T=50, 100 runs) — slow
//
// Absolute numbers differ from the paper (different hardware, a synthetic
// Geolife substitute, and a rank-one branch-and-bound instead of CPLEX);
// EXPERIMENTS.md records the shape comparisons that are expected to hold.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"priste/internal/experiments"
)

func main() {
	var (
		outDir  = flag.String("out", "results", "output directory for CSV files")
		only    = flag.String("only", "", "comma-separated subset (fig7..fig14, table3, pattern)")
		gridN   = flag.Int("grid", 10, "map side length")
		horizon = flag.Int("T", 30, "trajectory length")
		runs    = flag.Int("runs", 10, "runs per configuration")
		full    = flag.Bool("full", false, "paper-scale parameters (slow)")
	)
	flag.Parse()

	if *full {
		*gridN, *horizon, *runs = 20, 50, 100
	}
	synth := experiments.SyntheticConfig{
		W: *gridN, H: *gridN, Cell: 1, Sigma: 1, T: *horizon, Runs: *runs, Seed: 1,
	}
	geo := experiments.GeolifeConfig{
		W: *gridN, H: *gridN, CellKm: 1, Days: 4 * *runs, T: *horizon, Runs: *runs, Seed: 2,
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	selected := func(k string) bool { return len(want) == 0 || want[k] }

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	emit := func(key string, tabs ...*experiments.Table) {
		for i, tab := range tabs {
			name := key
			if len(tabs) > 1 {
				name = fmt.Sprintf("%s_%c", key, 'a'+i)
			}
			path := filepath.Join(*outDir, name+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println(tab)
			fmt.Printf("(written to %s)\n\n", path)
		}
	}

	run := func(key string, f func() ([]*experiments.Table, error)) {
		if !selected(key) {
			return
		}
		start := time.Now()
		fmt.Printf("--- %s ---\n", key)
		tabs, err := f()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", key, err))
		}
		emit(key, tabs...)
		fmt.Printf("[%s done in %v]\n\n", key, time.Since(start).Round(time.Millisecond))
	}

	pair := func(a, b *experiments.Table, err error) ([]*experiments.Table, error) {
		return []*experiments.Table{a, b}, err
	}
	single := func(t *experiments.Table, err error) ([]*experiments.Table, error) {
		return []*experiments.Table{t}, err
	}

	run("fig7", func() ([]*experiments.Table, error) {
		return pair(experiments.BudgetFig("Fig7", experiments.DefaultFig7(synth)))
	})
	run("fig8", func() ([]*experiments.Table, error) {
		return pair(experiments.BudgetFig("Fig8", experiments.DefaultFig8(synth)))
	})
	run("fig9", func() ([]*experiments.Table, error) {
		return pair(experiments.BudgetFig("Fig9", experiments.DefaultFig9(synth)))
	})
	run("fig10", func() ([]*experiments.Table, error) {
		return pair(experiments.BudgetFig("Fig10", experiments.DefaultFig10(synth)))
	})
	run("fig11", func() ([]*experiments.Table, error) {
		return single(experiments.Fig11(geo, []float64{0.5, 1, 3, 5}, []float64{0.1, 0.5, 1, 2}))
	})
	run("fig12", func() ([]*experiments.Table, error) {
		return single(experiments.Fig12(geo, 0.5, []float64{0.1, 0.3, 0.5, 0.7}, []float64{0.1, 1, 2, 3}))
	})
	run("fig13", func() ([]*experiments.Table, error) {
		return single(experiments.Fig13(synth, []float64{0.01, 0.1, 1, 10}, 1, []float64{0.1, 0.5, 1, 2}))
	})
	run("fig14", func() ([]*experiments.Table, error) {
		cfg := experiments.DefaultRuntime(synth)
		if *full {
			cfg.Lengths = []int{5, 7, 9, 11, 13, 15}
			cfg.Widths = []int{5, 7, 9, 11, 13, 15}
			cfg.FixedWidth = 5
			cfg.FixedLength = 5
			cfg.Trials = 20
			cfg.BaselineCap = 5e8
		}
		return pair(experiments.Fig14(cfg))
	})
	run("table3", func() ([]*experiments.Table, error) {
		cfg := experiments.DefaultTableIII(synth)
		if *full {
			cfg.Thresholds = append(cfg.Thresholds, time.Second)
		}
		return single(experiments.TableIII(cfg))
	})
	run("pattern", func() ([]*experiments.Table, error) {
		return single(experiments.AppendixPattern(geo, []float64{0.5, 1}, []float64{0.1, 0.5, 1, 2}))
	})
	run("ablation_decay", func() ([]*experiments.Table, error) {
		return single(experiments.AblationDecay(synth, []float64{0.25, 0.5, 0.75, 0.9}, 1, 0.5))
	})
	run("ablation_mismatch", func() ([]*experiments.Table, error) {
		return single(experiments.AblationModelMismatch(synth, 1, []float64{0.3, 1, 3}, 1, 0.5, 8))
	})
	run("security", func() ([]*experiments.Table, error) {
		return single(experiments.SecuritySweep(synth, 2.0, []float64{0.1, 0.5, 1, 2}))
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
