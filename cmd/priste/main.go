// Command priste releases a location trajectory under ε-spatiotemporal
// event privacy: it reads a state trajectory, protects one or more
// PRESENCE events, and writes the perturbed trajectory plus a per-step
// budget report.
//
// Usage:
//
//	go run ./cmd/priste -grid 10 -event "0-9@3-7" [-event ...] \
//	    [-eps 0.5] [-alpha 1.0] [-delta -1] [-in traj.csv] [-seed 1]
//
// Events use the syntax "LO-HI@START-END": protect PRESENCE over states
// LO..HI (0-based, inclusive) during timestamps START..END (0-based,
// inclusive). With -delta >= 0 the δ-location-set mechanism (Algorithm 3)
// replaces plain geo-indistinguishability (Algorithm 2).
//
// The input is one CSV line of state indices (as written by cmd/tracegen);
// without -in, a trajectory is sampled from the built-in mobility model.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"priste"
	"priste/internal/eventspec"
)

func main() {
	var events eventspec.ListFlag
	var (
		gridN = flag.Int("grid", 10, "map side length")
		cell  = flag.Float64("cell", 1.0, "cell edge length (km)")
		sigma = flag.Float64("sigma", 1.0, "mobility Gaussian scale")
		eps   = flag.Float64("eps", 0.5, "epsilon-spatiotemporal event privacy")
		alpha = flag.Float64("alpha", 1.0, "initial PLM budget (1/km)")
		delta = flag.Float64("delta", -1, "delta-location-set parameter; negative = plain geo-ind")
		in    = flag.String("in", "", "input trajectory CSV (one line of states)")
		T     = flag.Int("T", 20, "sampled trajectory length when -in is absent")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Var(&events, "event", `PRESENCE spec "LO-HI@START-END" (repeatable)`)
	flag.Parse()

	g, err := priste.NewGrid(*gridN, *gridN, *cell)
	check(err)
	m := g.States()
	chain, err := priste.GaussianChain(g, *sigma)
	check(err)
	pi := priste.UniformDistribution(m)
	rng := rand.New(rand.NewSource(*seed))

	var traj []int
	if *in != "" {
		f, err := os.Open(*in)
		check(err)
		trajs, err := priste.ReadStates(f)
		f.Close()
		check(err)
		if len(trajs) == 0 {
			check(fmt.Errorf("no trajectories in %s", *in))
		}
		traj = trajs[0]
		for _, s := range traj {
			if s >= m {
				check(fmt.Errorf("trajectory state %d outside %d-state map", s, m))
			}
		}
	} else {
		traj = chain.SamplePath(rng, pi, *T)
	}
	if len(traj) == 0 {
		check(fmt.Errorf("empty trajectory (horizon 0)"))
	}

	if len(events) == 0 {
		events = eventspec.ListFlag{"0-9@3-7"}
	}
	evs, err := eventspec.ParseAll(events, m, len(traj))
	check(err)

	var mech priste.Mechanism
	if *delta >= 0 {
		mech, err = priste.NewDeltaLocationSet(g, chain, pi, *delta)
		check(err)
	} else {
		mech = priste.NewPlanarLaplace(g)
	}

	fw, err := priste.NewFramework(mech, priste.Homogeneous(chain), evs,
		priste.DefaultConfig(*eps, *alpha), rng)
	check(err)

	fmt.Fprintf(os.Stderr, "protecting %d event(s) at eps=%g over %d timestamps\n", len(evs), *eps, len(traj))
	results, err := fw.Run(traj)
	check(err)

	released := make([]int, len(results))
	fmt.Println("# t,true,released,budget,attempts,uniform")
	for i, r := range results {
		released[i] = r.Obs
		fmt.Printf("%d,%d,%d,%.6f,%d,%t\n", r.T, traj[r.T], r.Obs, r.Alpha, r.Attempts, r.Uniform)
	}
	loss, err := fw.RealizedLoss(0, pi)
	if err == nil {
		fmt.Fprintf(os.Stderr, "realised loss for event 0 under uniform prior: %.4f\n", loss)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "priste:", err)
		os.Exit(1)
	}
}
