module priste

go 1.24
